//! The thread-sharded parallel runtime.
//!
//! ## Epoch-barrier execution
//!
//! [`ParallelSimulation`] drives the same actors, network model, and event
//! queue as the serial [`Simulation`], but executes *epochs* of events on
//! worker threads. An epoch is the maximal run of queued events whose
//! timestamps fall within the **lookahead** window of the earliest pending
//! event (`Simulation::pop_epoch`). The lookahead defaults to the network's
//! minimum delivery delay ([`NetworkConfig::min_delay`]), the classic
//! conservative-PDES bound: every send leaves at least `min_delay` after
//! the event that produced it, so nothing an epoch event does can schedule
//! new work *inside* its own epoch, and the whole epoch may execute before
//! any of its outputs are applied.
//!
//! Execution of one epoch has two phases:
//!
//! 1. **Sharded execute.** Events are partitioned by destination actor;
//!    each actor's slot (state, core accounting, per-node metrics) is
//!    checked out to a worker thread (`slot index % fan-out`, where the
//!    fan-out is just wide enough that each participating worker carries an
//!    inline-threshold's worth of events — the per-slot design of `sim.rs`
//!    is what makes the state movable), which
//!    runs the handlers of its slots' events in `(time, seq)` order. Slots
//!    never appear on two workers, so no locks and no sharing.
//! 2. **Sequential apply.** The driver merges the workers' execution
//!    records back into global `(time, seq)` order and applies the recorded
//!    outputs — partitions, loss, latency jitter (the only RNG draws), and
//!    queue insertion — exactly as the serial loop would have.
//!
//! ## Why determinism survives sharding
//!
//! The serial loop interleaves three kinds of state per event: the
//! destination actor's slot, the global RNG/queue, and the metrics
//! counters. Handlers only touch their own slot, and within one epoch no
//! event can causally precede another (the lookahead bound), so phase 1 is
//! order-free *across* actors and order-preserving *within* one. Phase 2
//! then consumes randomness in exactly the serial dispatch order. The
//! result is not "equivalent" but **bit-for-bit identical** to
//! [`Simulation::run_until`] — same event trace, same jitter draws, same
//! decisions — for *any* worker count, which is what lets the serial engine
//! act as the determinism oracle in `tests/`.
//!
//! Epochs smaller than [`ParallelSimulation::with_inline_threshold`] run
//! inline on the driver thread (identical code path, no synchronization);
//! the fan-out only pays for itself when an epoch carries enough handler
//! work to amortize two channel hops per worker. If a protocol ever
//! schedules a timer shorter than the lookahead, the inline path detects it
//! and falls back to strict serial order for the remainder of that epoch;
//! the sharded path cannot un-run a handler, so it panics with instructions
//! rather than silently diverging — use a smaller lookahead
//! ([`ParallelSimulation::with_lookahead`]) or the serial runtime.

use crate::network::NetworkConfig;
use crate::sim::{Event, ExecOutcome, NodeSlot, Simulation, UNKNOWN_SLOT};
use basil_common::{Duration, SimTime};
use std::sync::mpsc::{Receiver, Sender};

/// One event's execution record: everything the driver needs to finish the
/// dispatch (accounting + output application) in global order.
struct ExecRecord<M> {
    /// Position of the event within its epoch (global `(time, seq)` order).
    idx: u32,
    at: SimTime,
    is_timer: bool,
    to_slot: u32,
    outcome: ExecOutcome<M>,
}

/// A batch of work shipped to one worker: the checked-out slots it needs
/// and the events to run against them, in epoch order. One `Job` is the
/// worker's entire epoch — a single channel send regardless of how many
/// events it carries. `records` rides along empty as a spare buffer so the
/// worker never allocates on the hot path; the whole triple of vectors
/// makes a round trip (driver → worker → driver) and is reused next epoch.
struct Job<M> {
    slots: Vec<(u32, NodeSlot<M>)>,
    events: Vec<(u32, Event<M>)>,
    records: Vec<ExecRecord<M>>,
}

impl<M> Default for Job<M> {
    fn default() -> Self {
        Job {
            slots: Vec::new(),
            events: Vec::new(),
            records: Vec::new(),
        }
    }
}

/// A worker's reply: the slots (with updated actor state and metrics), the
/// execution records, and the drained event buffer handed back for reuse.
struct WorkerResult<M> {
    slots: Vec<(u32, NodeSlot<M>)>,
    events: Vec<(u32, Event<M>)>,
    records: Vec<ExecRecord<M>>,
}

fn worker_loop<M: Send + 'static>(jobs: Receiver<Job<M>>, results: Sender<WorkerResult<M>>) {
    while let Ok(mut job) = jobs.recv() {
        let mut records = std::mem::take(&mut job.records);
        records.reserve(job.events.len());
        for (idx, ev) in job.events.drain(..) {
            let pos = job
                .slots
                .iter()
                .position(|(s, _)| *s == ev.to_slot)
                .expect("destination slot ships with its events");
            let (at, is_timer, to_slot) = (ev.at, ev.is_timer, ev.to_slot);
            let outcome = job.slots[pos].1.execute(ev);
            records.push(ExecRecord {
                idx,
                at,
                is_timer,
                to_slot,
                outcome,
            });
        }
        if results
            .send(WorkerResult {
                slots: job.slots,
                events: job.events,
                records,
            })
            .is_err()
        {
            return;
        }
    }
}

/// The parallel cluster runtime: a [`Simulation`] executed in epochs by a
/// pool of worker threads. See the module docs for the execution model and
/// the determinism argument.
///
/// All state — actors, queue, RNG, metrics — lives in the wrapped serial
/// engine, accessible through [`ParallelSimulation::inner`] /
/// [`ParallelSimulation::inner_mut`] between runs; only the `run_*` entry
/// points differ.
pub struct ParallelSimulation<M> {
    inner: Simulation<M>,
    workers: usize,
    lookahead: Option<Duration>,
    inline_threshold: usize,
}

impl<M: Clone + Send + 'static> ParallelSimulation<M> {
    /// Default epoch size below which the driver executes inline instead of
    /// fanning out: two channel hops per worker (~microseconds) only pay
    /// for themselves once an epoch carries a comparable amount of handler
    /// work.
    pub const DEFAULT_INLINE_THRESHOLD: usize = 16;

    /// The default inline threshold for this host: on a machine without at
    /// least two hardware threads the fan-out can never win wall-clock time
    /// (workers would time-slice one core and pay the context switches), so
    /// every epoch stays inline — results are identical either way, see the
    /// module docs. [`ParallelSimulation::with_inline_threshold`] overrides
    /// this, which is how the determinism tests force the worker path even
    /// on single-core CI hosts.
    pub fn host_inline_threshold() -> usize {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if hw < 2 {
            usize::MAX
        } else {
            Self::DEFAULT_INLINE_THRESHOLD
        }
    }

    /// Creates an empty parallel simulation with `workers` worker threads.
    /// `workers` is clamped to at least 1; with one worker the driver runs
    /// the serial loop directly (fanning out to a single worker could only
    /// add overhead). The epoch machinery itself is exercised by worker
    /// counts ≥ 2 and, inline, by small epochs under any count.
    pub fn new(seed: u64, network: NetworkConfig, workers: usize) -> Self {
        ParallelSimulation {
            inner: Simulation::new(seed, network),
            workers: workers.max(1),
            lookahead: None,
            inline_threshold: Self::host_inline_threshold(),
        }
    }

    /// Wraps an already-built serial simulation.
    pub fn from_serial(sim: Simulation<M>, workers: usize) -> Self {
        ParallelSimulation {
            inner: sim,
            workers: workers.max(1),
            lookahead: None,
            inline_threshold: Self::host_inline_threshold(),
        }
    }

    /// Overrides the epoch lookahead. Must be a lower bound on every
    /// message latency and timer delay the run can produce; larger values
    /// make denser epochs (more parallelism), smaller values are safer.
    /// Defaults to [`NetworkConfig::min_delay`].
    pub fn with_lookahead(mut self, lookahead: Duration) -> Self {
        self.lookahead = Some(lookahead);
        self
    }

    /// Overrides the epoch size below which events run inline on the
    /// driver thread (0 forces every epoch through the workers — useful in
    /// tests).
    pub fn with_inline_threshold(mut self, threshold: usize) -> Self {
        self.inline_threshold = threshold;
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The wrapped serial engine (actors, metrics, partitions, clock) —
    /// valid between runs, when every slot is home.
    pub fn inner(&self) -> &Simulation<M> {
        &self.inner
    }

    /// Mutable access to the wrapped serial engine (fault injection,
    /// message injection, actor inspection) — valid between runs.
    pub fn inner_mut(&mut self) -> &mut Simulation<M> {
        &mut self.inner
    }

    /// The effective epoch lookahead for the current network.
    pub fn effective_lookahead(&self) -> Duration {
        self.lookahead
            .unwrap_or_else(|| self.inner.network.min_delay())
    }

    /// Runs until the event queue is exhausted or `deadline` is reached.
    /// Produces the bit-for-bit identical trace to
    /// [`Simulation::run_until`] on the same inputs, for any worker count.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.inner.ensure_started();
        let lookahead = self.effective_lookahead();
        let workers = self.workers;
        let threshold = self.inline_threshold;
        let inner = &mut self.inner;

        std::thread::scope(|scope| {
            let mut pool: Option<WorkerPool<M>> = None;
            let mut buf: Vec<Event<M>> = Vec::new();
            let mut scratch = EpochScratch::default();
            while let Some(at) = inner.peek_at() {
                if at > deadline {
                    break;
                }
                // Sparse queue: step exactly like the serial loop (pop one,
                // dispatch, repeat) — no epoch commitment, no event moves
                // through a buffer. `queue_density` (events in the drain
                // bucket, which spans at least one lookahead window) is an
                // upper bound on the next epoch's size, so a density below
                // the threshold can never miss a fan-out-worthy epoch.
                if workers <= 1 || inner.queue_density() < threshold.max(1) {
                    inner.step_one();
                    continue;
                }
                buf.clear();
                inner.pop_epoch(deadline, lookahead, &mut buf);
                if buf.is_empty() {
                    break;
                }
                if buf.len() < threshold.max(1) {
                    // The density hint over-estimated (bucket wider than the
                    // lookahead window); run this small epoch inline.
                    run_epoch_inline(inner, &mut buf);
                    continue;
                }
                let pool = pool.get_or_insert_with(|| WorkerPool::spawn(scope, workers));
                run_epoch_sharded(inner, &mut buf, pool, &mut scratch, threshold);
            }
            // Dropping the pool's senders shuts the workers down; the scope
            // joins them.
        });
        self.inner.finish_run(deadline);
    }

    /// Runs for `d` of simulated time past the current time.
    pub fn run_for(&mut self, d: Duration) {
        let deadline = self.inner.now() + d;
        self.run_until(deadline);
    }
}

struct WorkerPool<M> {
    job_txs: Vec<Sender<Job<M>>>,
    results: Receiver<WorkerResult<M>>,
}

/// Buffers reused across sharded epochs so the hot loop performs no
/// steady-state allocation of its own. The job vectors (slots, events,
/// record buffers) round-trip through the worker channels and come home in
/// each [`WorkerResult`], so `job_pool` keeps them warm between epochs.
struct EpochScratch<M> {
    /// Records merged back into epoch order (`None` until received).
    merged: Vec<Option<ExecRecord<M>>>,
    /// Per-slot "already checked out this epoch" flags, indexed by slot.
    checked_out: Vec<bool>,
    /// Slots flagged this epoch (to reset `checked_out` in O(touched)).
    touched: Vec<u32>,
    /// Drained job triples recovered from worker replies, reissued next
    /// epoch instead of allocating fresh vectors.
    job_pool: Vec<Job<M>>,
}

impl<M> Default for EpochScratch<M> {
    fn default() -> Self {
        EpochScratch {
            merged: Vec::new(),
            checked_out: Vec::new(),
            touched: Vec::new(),
            job_pool: Vec::new(),
        }
    }
}

impl<M: Send + 'static> WorkerPool<M> {
    fn spawn<'scope>(
        scope: &'scope std::thread::Scope<'scope, '_>,
        workers: usize,
    ) -> WorkerPool<M> {
        let (res_tx, results) = std::sync::mpsc::channel();
        let job_txs = (0..workers)
            .map(|_| {
                let (jtx, jrx) = std::sync::mpsc::channel();
                let res_tx = res_tx.clone();
                scope.spawn(move || worker_loop(jrx, res_tx));
                jtx
            })
            .collect();
        WorkerPool { job_txs, results }
    }
}

/// Executes one epoch on the driver thread, event by event, exactly like
/// the serial loop. If an event schedules work inside the epoch window
/// (a sub-lookahead timer), the un-executed tail is pushed back into the
/// queue — the inline path is therefore exact for *any* lookahead.
fn run_epoch_inline<M: Clone + 'static>(sim: &mut Simulation<M>, buf: &mut Vec<Event<M>>) {
    let epoch_last_at = buf.last().expect("non-empty epoch").at;
    let mut events = std::mem::take(buf).into_iter();
    while let Some(ev) = events.next() {
        let earliest = sim.dispatch(ev);
        if let Some(e) = earliest {
            if e < epoch_last_at && events.len() > 0 {
                // New work landed inside the epoch: fall back to strict
                // serial order for the remainder.
                sim.requeue(events);
                return;
            }
        }
    }
}

/// Executes one epoch across the worker pool: partition events and check
/// out their slots per worker, run handlers in parallel, then merge the
/// records and apply outputs in global `(time, seq)` order.
///
/// Each epoch costs two channel hops per *participating* worker, so small
/// epochs are batched onto fewer workers: the epoch fans out to just enough
/// workers that each carries roughly an inline-threshold's worth of events,
/// instead of paying the full pool's hop overhead for a handful of events
/// each. The slot→worker map only picks the thread that runs a handler —
/// records are merged back into global `(time, seq)` order by index — so
/// the trace is bit-for-bit identical for any fan-out width.
fn run_epoch_sharded<M: Clone + Send + 'static>(
    sim: &mut Simulation<M>,
    buf: &mut Vec<Event<M>>,
    pool: &mut WorkerPool<M>,
    scratch: &mut EpochScratch<M>,
    inline_threshold: usize,
) {
    let n = buf.len();
    let epoch_last_at = buf.last().expect("non-empty epoch").at;
    let per_worker = inline_threshold.max(ParallelSimulation::<M>::DEFAULT_INLINE_THRESHOLD);
    let workers = (n / per_worker).clamp(1, pool.job_txs.len());
    let mut jobs: Vec<Job<M>> = (0..workers)
        .map(|_| scratch.job_pool.pop().unwrap_or_default())
        .collect();
    scratch.merged.clear();
    scratch.merged.resize_with(n, || None);
    if scratch.checked_out.len() < sim.node_count() {
        scratch.checked_out.resize(sim.node_count(), false);
    }

    for (idx, ev) in std::mem::take(buf).drain(..).enumerate() {
        let idx = idx as u32;
        if ev.to_slot == UNKNOWN_SLOT {
            scratch.merged[idx as usize] = Some(ExecRecord {
                idx,
                at: ev.at,
                is_timer: ev.is_timer,
                to_slot: ev.to_slot,
                outcome: ExecOutcome::Dropped,
            });
            continue;
        }
        let w = (ev.to_slot as usize) % workers;
        let flag = &mut scratch.checked_out[ev.to_slot as usize];
        if !*flag {
            *flag = true;
            scratch.touched.push(ev.to_slot);
            let slot = sim
                .take_slot(ev.to_slot)
                .expect("destination slot is home between epochs");
            jobs[w].slots.push((ev.to_slot, slot));
        }
        jobs[w].events.push((idx, ev));
    }
    for slot in scratch.touched.drain(..) {
        scratch.checked_out[slot as usize] = false;
    }

    let mut outstanding = 0usize;
    for (w, job) in jobs.into_iter().enumerate() {
        if job.events.is_empty() {
            // Idle worker this epoch: keep its buffers warm locally.
            scratch.job_pool.push(job);
            continue;
        }
        outstanding += 1;
        pool.job_txs[w].send(job).expect("worker alive");
    }
    for _ in 0..outstanding {
        let mut result = pool.results.recv().expect("worker thread panicked");
        for (idx, slot) in result.slots.drain(..) {
            sim.put_slot(idx, slot);
        }
        for rec in result.records.drain(..) {
            let i = rec.idx as usize;
            scratch.merged[i] = Some(rec);
        }
        scratch.job_pool.push(Job {
            slots: result.slots,
            events: result.events,
            records: result.records,
        });
    }

    for rec in scratch.merged.drain(..) {
        let rec = rec.expect("every epoch event produced a record");
        let earliest = sim.apply_exec(rec.to_slot, rec.at, rec.is_timer, rec.outcome);
        if let Some(e) = earliest {
            assert!(
                e >= epoch_last_at,
                "parallel runtime epoch violation: an event at {:?} scheduled new work at \
                 {:?}, inside the current epoch (last event {:?}). The configured lookahead \
                 exceeds the minimum send latency or timer delay of this deployment; lower it \
                 with ParallelSimulation::with_lookahead or run this scenario on the serial \
                 runtime.",
                rec.at,
                e,
                epoch_last_at,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Actor, Context};
    use crate::sim::NodeProps;
    use basil_common::{ClientId, NodeId};
    use std::any::Any;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
        Tick,
    }

    struct Pinger {
        peer: NodeId,
        remaining: u32,
        completions: Vec<SimTime>,
    }

    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            for i in 0..4 {
                ctx.send(self.peer, Msg::Ping(i));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
            if let Msg::Pong(i) = msg {
                self.completions.push(ctx.now());
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.charge(basil_common::Duration::from_micros(3));
                    ctx.send(from, Msg::Ping(i));
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Echoer;

    impl Actor<Msg> for Echoer {
        fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(i) = msg {
                ctx.charge(basil_common::Duration::from_micros(5));
                ctx.send(from, Msg::Pong(i));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn client(n: u64) -> NodeId {
        NodeId::Client(ClientId(n))
    }

    fn build_serial(pairs: u64, seed: u64) -> Simulation<Msg> {
        let mut sim = Simulation::new(seed, NetworkConfig::lan());
        populate(&mut sim, pairs);
        sim
    }

    fn populate(sim: &mut Simulation<Msg>, pairs: u64) {
        for p in 0..pairs {
            let pinger = client(2 * p);
            let echoer = client(2 * p + 1);
            sim.add_node(
                pinger,
                NodeProps::default(),
                Box::new(Pinger {
                    peer: echoer,
                    remaining: 120,
                    completions: Vec::new(),
                }),
            );
            sim.add_node(echoer, NodeProps::default(), Box::new(Echoer));
        }
    }

    fn trace_of(sim: &Simulation<Msg>, pairs: u64) -> Vec<Vec<SimTime>> {
        (0..pairs)
            .map(|p| {
                sim.actor::<Pinger>(client(2 * p))
                    .expect("pinger")
                    .completions
                    .clone()
            })
            .collect()
    }

    /// The heart of the determinism contract: for any worker count, the
    /// parallel runtime produces the identical completion-time trace and
    /// identical metrics to the serial engine.
    #[test]
    fn parallel_trace_is_bit_identical_to_serial_for_any_worker_count() {
        let pairs = 8;
        let mut serial = build_serial(pairs, 42);
        serial.run_until(SimTime::from_millis(200));
        let expected = trace_of(&serial, pairs);
        let expected_metrics = serial.metrics();

        for workers in [1usize, 2, 3, 4, 7] {
            let mut par =
                ParallelSimulation::new(42, NetworkConfig::lan(), workers).with_inline_threshold(0);
            populate(par.inner_mut(), pairs);
            par.run_until(SimTime::from_millis(200));
            assert_eq!(
                trace_of(par.inner(), pairs),
                expected,
                "trace diverged at {workers} workers"
            );
            let m = par.inner().metrics();
            assert_eq!(m.events_processed, expected_metrics.events_processed);
            assert_eq!(m.messages_sent, expected_metrics.messages_sent);
            assert_eq!(m.messages_delivered, expected_metrics.messages_delivered);
            assert_eq!(m.messages_dropped, expected_metrics.messages_dropped);
            assert_eq!(m.last_event_at, expected_metrics.last_event_at);
            for (id, nm) in &expected_metrics.per_node {
                let pm = m.per_node.get(id).expect("node present");
                assert_eq!(pm.messages_processed, nm.messages_processed, "{id:?}");
                assert_eq!(pm.cpu_busy, nm.cpu_busy, "{id:?}");
                assert_eq!(pm.queue_wait, nm.queue_wait, "{id:?}");
                assert_eq!(pm.messages_sent, nm.messages_sent, "{id:?}");
            }
            assert_eq!(par.inner().now(), serial.now());
        }
    }

    /// The inline path (epochs below the threshold) must be exact too.
    #[test]
    fn inline_epochs_match_serial() {
        let pairs = 4;
        let mut serial = build_serial(pairs, 7);
        serial.run_until(SimTime::from_millis(50));
        let expected = trace_of(&serial, pairs);

        let mut par =
            ParallelSimulation::new(7, NetworkConfig::lan(), 4).with_inline_threshold(usize::MAX);
        populate(par.inner_mut(), pairs);
        par.run_until(SimTime::from_millis(50));
        assert_eq!(trace_of(par.inner(), pairs), expected);
    }

    /// A timer shorter than the lookahead lands inside the epoch window.
    /// The inline path must back out and stay exact rather than reorder.
    #[test]
    fn sub_lookahead_timer_is_exact_on_the_inline_path() {
        struct FastTimer {
            fired: Vec<SimTime>,
        }
        impl Actor<Msg> for FastTimer {
            fn on_start(&mut self, ctx: &mut Context<Msg>) {
                ctx.schedule_self(basil_common::Duration::from_nanos(100), Msg::Tick);
            }
            fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, _msg: Msg) {
                self.fired.push(ctx.now());
                if self.fired.len() < 50 {
                    ctx.schedule_self(basil_common::Duration::from_nanos(100), Msg::Tick);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let build = |sim: &mut Simulation<Msg>| {
            sim.add_node(
                client(100),
                NodeProps::default(),
                Box::new(FastTimer { fired: Vec::new() }),
            );
            populate(sim, 2);
        };

        let mut serial = Simulation::new(3, NetworkConfig::lan());
        build(&mut serial);
        serial.run_until(SimTime::from_millis(20));
        let expected = serial
            .actor::<FastTimer>(client(100))
            .expect("t")
            .fired
            .clone();

        // Inline path: threshold above any epoch size.
        let mut par =
            ParallelSimulation::new(3, NetworkConfig::lan(), 2).with_inline_threshold(usize::MAX);
        build(par.inner_mut());
        par.run_until(SimTime::from_millis(20));
        assert_eq!(
            par.inner()
                .actor::<FastTimer>(client(100))
                .expect("t")
                .fired,
            expected
        );
        assert_eq!(expected.len(), 50);
    }

    /// Link faults (drop / delay / replay / corrupt) draw their randomness
    /// in `apply_outputs` on the driver thread, so a faulted run must stay
    /// bit-for-bit identical between the serial and sharded runtimes.
    #[test]
    fn link_faults_are_bit_identical_across_runtimes() {
        use crate::network::{LinkFault, LinkFaultKind, NodeMatcher};

        let install = |sim: &mut Simulation<Msg>| {
            sim.add_link_fault(LinkFault::new(
                LinkFaultKind::Drop { probability: 0.2 },
                NodeMatcher::Node(client(0)),
                NodeMatcher::Any,
                SimTime::from_millis(2),
                SimTime::from_millis(60),
            ));
            sim.add_link_fault(LinkFault::new(
                LinkFaultKind::Replay { probability: 0.3 },
                NodeMatcher::Node(client(3)),
                NodeMatcher::Node(client(2)),
                SimTime::from_micros(500),
                SimTime::from_millis(80),
            ));
            sim.add_link_fault(LinkFault::new(
                LinkFaultKind::Delay {
                    extra: basil_common::Duration::from_micros(40),
                },
                NodeMatcher::Any,
                NodeMatcher::Node(client(5)),
                SimTime::ZERO,
                SimTime::from_millis(200),
            ));
            sim.add_link_fault(LinkFault::new(
                LinkFaultKind::Corrupt { probability: 0.1 },
                NodeMatcher::Node(client(4)),
                NodeMatcher::Any,
                SimTime::from_millis(1),
                SimTime::from_millis(120),
            ));
        };

        let pairs = 8;
        let mut serial = build_serial(pairs, 91);
        install(&mut serial);
        serial.run_until(SimTime::from_millis(200));
        let expected = trace_of(&serial, pairs);
        let expected_metrics = serial.metrics();
        assert!(expected_metrics.messages_dropped > 0, "drop fault bit");
        assert!(expected_metrics.messages_replayed > 0, "replay fault bit");
        assert!(expected_metrics.messages_corrupted > 0, "corrupt fault bit");

        for workers in [2usize, 3, 5] {
            let mut par =
                ParallelSimulation::new(91, NetworkConfig::lan(), workers).with_inline_threshold(0);
            populate(par.inner_mut(), pairs);
            install(par.inner_mut());
            par.run_until(SimTime::from_millis(200));
            assert_eq!(
                trace_of(par.inner(), pairs),
                expected,
                "faulted trace diverged at {workers} workers"
            );
            let m = par.inner().metrics();
            assert_eq!(m.messages_sent, expected_metrics.messages_sent);
            assert_eq!(m.messages_delivered, expected_metrics.messages_delivered);
            assert_eq!(m.messages_dropped, expected_metrics.messages_dropped);
            assert_eq!(m.messages_corrupted, expected_metrics.messages_corrupted);
            assert_eq!(m.messages_replayed, expected_metrics.messages_replayed);
            assert_eq!(m.events_processed, expected_metrics.events_processed);
        }
    }

    /// Crash and restart between runs behave identically under both
    /// runtimes (deliveries to a crashed node are dropped, state survives).
    #[test]
    fn crash_restart_between_runs_matches_serial() {
        let run = |parallel: bool| -> (Vec<Vec<SimTime>>, u64) {
            if parallel {
                let mut par =
                    ParallelSimulation::new(11, NetworkConfig::lan(), 3).with_inline_threshold(0);
                populate(par.inner_mut(), 3);
                par.run_until(SimTime::from_millis(2));
                par.inner_mut().crash(client(1));
                par.run_until(SimTime::from_millis(6));
                par.inner_mut().restart(client(1));
                par.run_until(SimTime::from_millis(40));
                (
                    trace_of(par.inner(), 3),
                    par.inner().metrics().messages_dropped,
                )
            } else {
                let mut sim = build_serial(3, 11);
                sim.run_until(SimTime::from_millis(2));
                sim.crash(client(1));
                sim.run_until(SimTime::from_millis(6));
                sim.restart(client(1));
                sim.run_until(SimTime::from_millis(40));
                (trace_of(&sim, 3), sim.metrics().messages_dropped)
            }
        };
        let (serial_trace, serial_dropped) = run(false);
        let (par_trace, par_dropped) = run(true);
        assert_eq!(par_trace, serial_trace);
        assert_eq!(par_dropped, serial_dropped);
        assert!(serial_dropped > 0, "crash dropped something");
    }
}
