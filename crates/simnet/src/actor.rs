//! The actor abstraction: sans-io protocol state machines driven by the
//! simulator.

use basil_common::{Duration, NodeId, SimTime};
use std::any::Any;

/// A protocol participant.
///
/// Implementations are pure state machines: all interaction with the outside
/// world goes through the [`Context`] passed to each callback. This keeps the
/// protocol logic deterministic, directly unit-testable (construct a
/// `Context`, feed messages, inspect the recorded outputs), and reusable by
/// both the discrete-event simulator and the threaded runtime.
///
/// `Send` is part of the contract: the parallel runtime
/// (`basil_simnet::parallel`) moves each actor's slot to a fixed worker
/// thread for the duration of an epoch, so an actor may own no
/// thread-affine state (`Rc`, un-`Send` interior mutability). An actor is
/// only ever *executed* by one thread at a time — `Sync` is not required.
pub trait Actor<M>: Any + Send {
    /// Called once when the simulation starts, before any message delivery.
    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    /// Called when a message from `from` is delivered to this actor.
    fn on_message(&mut self, ctx: &mut Context<M>, from: NodeId, msg: M);

    /// Called when a timer previously scheduled with
    /// [`Context::schedule_self`] fires. The timer payload is an ordinary
    /// message the actor sent to itself.
    fn on_timer(&mut self, ctx: &mut Context<M>, msg: M) {
        // By default treat timers as self-messages.
        let id = ctx.self_id();
        self.on_message(ctx, id, msg);
    }

    /// Upcast for harness-side inspection of concrete actor state.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for harness-side inspection of concrete actor state.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Everything an actor may do while handling an event.
///
/// The context records sends, timers, and CPU charges; the simulator applies
/// them when the handler returns (sends leave the node once the charged CPU
/// time has elapsed).
pub struct Context<M> {
    self_id: NodeId,
    now: SimTime,
    local_clock: SimTime,
    charged: Duration,
    outputs: Vec<Output<M>>,
}

/// An effect produced by an actor while handling an event.
#[derive(Debug)]
pub enum Output<M> {
    /// Send `msg` to `to` once the handler's charged CPU time has elapsed.
    Send {
        /// Destination node.
        to: NodeId,
        /// Message payload.
        msg: M,
    },
    /// Deliver `msg` back to the sending actor after `delay`.
    Timer {
        /// Delay from the end of the current handler.
        delay: Duration,
        /// Timer payload.
        msg: M,
    },
}

impl<M> Context<M> {
    /// Creates a context for one handler invocation. Used by the simulator
    /// and by unit tests that drive actors directly.
    pub fn new(self_id: NodeId, now: SimTime, local_clock: SimTime) -> Self {
        Context {
            self_id,
            now,
            local_clock,
            charged: Duration::ZERO,
            outputs: Vec::new(),
        }
    }

    /// Creates a context whose local clock equals global time — the shape
    /// every non-simulated runtime wants. The real-IO runtime (`basil-net`)
    /// builds one of these per delivered event: real deployments have no
    /// injected skew (each process reads its actual clock), so the two
    /// times coincide by construction.
    pub fn at(self_id: NodeId, now: SimTime) -> Self {
        Context::new(self_id, now, now)
    }

    /// The identity of the actor handling the event.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Global simulation time at which the handler started.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's local clock reading (global time plus the node's skew).
    /// Protocol code that timestamps operations must use this, not
    /// [`Context::now`], so that clock-skew effects are modelled.
    pub fn local_clock(&self) -> SimTime {
        self.local_clock
    }

    /// Sends a message to another node (or to self, which loops back through
    /// the network with loopback latency).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outputs.push(Output::Send { to, msg });
    }

    /// Sends the same message to every node in `dests`.
    pub fn broadcast(&mut self, dests: impl IntoIterator<Item = NodeId>, msg: M)
    where
        M: Clone,
    {
        for d in dests {
            self.send(d, msg.clone());
        }
    }

    /// Schedules `msg` to be delivered back to this actor after `delay`
    /// (measured from the end of the current handler).
    pub fn schedule_self(&mut self, delay: Duration, msg: M) {
        self.outputs.push(Output::Timer { delay, msg });
    }

    /// Charges `cpu` of processing time to this node. The charged time
    /// occupies a core, delays this handler's outputs, and pushes back the
    /// start of subsequently queued work on the same core.
    pub fn charge(&mut self, cpu: Duration) {
        self.charged += cpu;
    }

    /// Total CPU charged so far in this handler.
    pub fn charged(&self) -> Duration {
        self.charged
    }

    /// Consumes the context, returning the recorded outputs and CPU charge.
    pub fn finish(self) -> (Vec<Output<M>>, Duration) {
        (self.outputs, self.charged)
    }

    /// The recorded outputs (for tests that inspect without consuming).
    pub fn outputs(&self) -> &[Output<M>] {
        &self.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::ClientId;

    #[derive(Clone, Debug, PartialEq)]
    enum TestMsg {
        Ping,
        Pong,
    }

    struct Echo {
        pongs: usize,
    }

    impl Actor<TestMsg> for Echo {
        fn on_message(&mut self, ctx: &mut Context<TestMsg>, from: NodeId, msg: TestMsg) {
            if msg == TestMsg::Ping {
                ctx.charge(Duration::from_micros(10));
                ctx.send(from, TestMsg::Pong);
            } else {
                self.pongs += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn context_records_outputs_and_charges() {
        let me = NodeId::Client(ClientId(1));
        let other = NodeId::Client(ClientId(2));
        let mut ctx = Context::new(me, SimTime::from_millis(1), SimTime::from_millis(1));
        let mut echo = Echo { pongs: 0 };
        echo.on_message(&mut ctx, other, TestMsg::Ping);
        assert_eq!(ctx.charged(), Duration::from_micros(10));
        let (outputs, charged) = ctx.finish();
        assert_eq!(charged, Duration::from_micros(10));
        assert_eq!(outputs.len(), 1);
        match &outputs[0] {
            Output::Send { to, msg } => {
                assert_eq!(*to, other);
                assert_eq!(*msg, TestMsg::Pong);
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn broadcast_sends_to_each_destination() {
        let me = NodeId::Client(ClientId(1));
        let mut ctx: Context<TestMsg> = Context::new(me, SimTime::ZERO, SimTime::ZERO);
        let dests: Vec<NodeId> = (2..5).map(|i| NodeId::Client(ClientId(i))).collect();
        ctx.broadcast(dests.clone(), TestMsg::Ping);
        assert_eq!(ctx.outputs().len(), 3);
    }

    #[test]
    fn default_on_timer_loops_back_to_on_message() {
        let me = NodeId::Client(ClientId(1));
        let mut ctx = Context::new(me, SimTime::ZERO, SimTime::ZERO);
        let mut echo = Echo { pongs: 0 };
        echo.on_timer(&mut ctx, TestMsg::Pong);
        assert_eq!(echo.pongs, 1);
    }

    #[test]
    fn schedule_self_records_timer() {
        let me = NodeId::Client(ClientId(1));
        let mut ctx: Context<TestMsg> = Context::new(me, SimTime::ZERO, SimTime::ZERO);
        ctx.schedule_self(Duration::from_millis(5), TestMsg::Ping);
        let (outputs, _) = ctx.finish();
        assert!(
            matches!(outputs[0], Output::Timer { delay, .. } if delay == Duration::from_millis(5))
        );
    }
}
