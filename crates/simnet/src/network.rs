//! Network model: latency, jitter, loss, partitions, and targeted link
//! faults.

use basil_common::{Duration, NodeId, SimTime};
use rand::Rng;
use std::collections::HashSet;

/// Configuration of the simulated network.
///
/// The defaults approximate the CloudLab m510 cluster the paper used:
/// 0.15 ms ping (so 75 µs one way), 10 GbE (bandwidth is not modelled; the
/// per-message CPU overhead in the crypto cost model covers serialization).
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Mean one-way latency between distinct nodes.
    pub one_way_latency: Duration,
    /// Uniform jitter added to each message: the actual latency is drawn from
    /// `[one_way_latency, one_way_latency + jitter]`.
    pub jitter: Duration,
    /// Latency of a node talking to itself (loopback).
    pub loopback_latency: Duration,
    /// Probability in `[0, 1)` that a message is silently dropped.
    pub drop_probability: f64,
}

impl NetworkConfig {
    /// LAN profile matching the paper's testbed.
    pub fn lan() -> Self {
        NetworkConfig {
            one_way_latency: Duration::from_micros(75),
            jitter: Duration::from_micros(20),
            loopback_latency: Duration::from_micros(5),
            drop_probability: 0.0,
        }
    }

    /// An idealized instantaneous network, useful in unit tests where only
    /// protocol logic matters.
    pub fn instant() -> Self {
        NetworkConfig {
            one_way_latency: Duration::from_nanos(1),
            jitter: Duration::ZERO,
            loopback_latency: Duration::from_nanos(1),
            drop_probability: 0.0,
        }
    }

    /// A lossy LAN, for fault-injection tests.
    pub fn lossy(drop_probability: f64) -> Self {
        NetworkConfig {
            drop_probability,
            ..NetworkConfig::lan()
        }
    }

    /// Samples the delivery latency for a message from `from` to `to`.
    pub fn sample_latency(&self, from: NodeId, to: NodeId, rng: &mut impl Rng) -> Duration {
        if from == to {
            return self.loopback_latency;
        }
        if self.jitter == Duration::ZERO {
            return self.one_way_latency;
        }
        let extra = rng.gen_range(0..=self.jitter.as_nanos());
        self.one_way_latency + Duration::from_nanos(extra)
    }

    /// Decides whether a message is dropped.
    pub fn sample_drop(&self, rng: &mut impl Rng) -> bool {
        self.drop_probability > 0.0 && rng.gen::<f64>() < self.drop_probability
    }

    /// A guaranteed lower bound on the delivery delay of any message this
    /// network can produce (jitter only ever adds). The parallel runtime
    /// uses it as the default epoch lookahead: no event can schedule a send
    /// closer than this to its own timestamp.
    pub fn min_delay(&self) -> Duration {
        self.one_way_latency.min(self.loopback_latency)
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::lan()
    }
}

/// A dynamic partition: messages between the two sides are dropped while the
/// partition is active. Used by liveness and fallback tests.
#[derive(Clone, Debug, Default)]
pub struct Partition {
    isolated: HashSet<NodeId>,
    active: bool,
}

impl Partition {
    /// Creates an inactive partition isolating `nodes` from everyone else.
    pub fn isolating(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Partition {
            isolated: nodes.into_iter().collect(),
            active: false,
        }
    }

    /// Activates the partition.
    pub fn activate(&mut self) {
        self.active = true;
    }

    /// Heals the partition.
    pub fn heal(&mut self) {
        self.active = false;
    }

    /// Whether the partition currently blocks traffic between `a` and `b`.
    pub fn blocks(&self, a: NodeId, b: NodeId) -> bool {
        if !self.active || a == b {
            return false;
        }
        self.isolated.contains(&a) != self.isolated.contains(&b)
    }

    /// Whether the partition is currently active.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

/// Selects the nodes on one side of a targeted link fault.
///
/// Matchers are pure predicates over [`NodeId`]s, so fault *selection* is
/// deterministic; only the per-message probability draws consume the
/// simulation RNG (and only for messages a fault actually matches, so
/// installing no faults leaves the RNG stream — and every pinned golden
/// trace — untouched).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeMatcher {
    /// Matches every node.
    Any,
    /// Matches every client.
    Clients,
    /// Matches every replica.
    Replicas,
    /// Matches exactly one node.
    Node(NodeId),
}

impl NodeMatcher {
    /// Whether `id` is selected by this matcher.
    pub fn matches(&self, id: NodeId) -> bool {
        match self {
            NodeMatcher::Any => true,
            NodeMatcher::Clients => id.is_client(),
            NodeMatcher::Replicas => !id.is_client(),
            NodeMatcher::Node(n) => *n == id,
        }
    }
}

/// What a matching link fault does to a message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkFaultKind {
    /// Silently drop the message with the given probability.
    Drop {
        /// Per-message drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Add a fixed extra delay on top of the sampled network latency.
    /// Delay only ever *adds*, so [`NetworkConfig::min_delay`] — and with it
    /// the parallel runtime's epoch-lookahead bound — stays valid.
    Delay {
        /// Extra one-way delay added to each matching message.
        extra: Duration,
    },
    /// Deliver the message *twice* (an attacker or a flaky link replaying
    /// traffic) with the given probability; the duplicate samples its own
    /// delivery latency.
    Replay {
        /// Per-message replay probability in `[0, 1]`.
        probability: f64,
    },
    /// Corrupt the message in flight with the given probability. If the
    /// simulation has a typed corruptor installed
    /// ([`crate::Simulation::set_corruptor`]) the payload is mutated and
    /// delivered; otherwise the corruption is treated as *detected garble* —
    /// Basil's channels are authenticated (HMAC), so an undecodable message
    /// is discarded by the receiver, i.e. a drop counted separately.
    Corrupt {
        /// Per-message corruption probability in `[0, 1]`.
        probability: f64,
    },
}

/// A targeted, time-windowed network fault on the links selected by a pair
/// of [`NodeMatcher`]s. Installed via `Simulation::add_link_fault`; the
/// scenario layer (`basil-scenario`) compiles declarative fault specs down
/// to these.
#[derive(Clone, Debug)]
pub struct LinkFault {
    /// Sender-side selector.
    pub from: NodeMatcher,
    /// Receiver-side selector.
    pub to: NodeMatcher,
    /// Start of the active window (inclusive, in simulation time).
    pub start: SimTime,
    /// End of the active window (exclusive).
    pub end: SimTime,
    /// The effect applied to matching messages.
    pub kind: LinkFaultKind,
}

impl LinkFault {
    /// Creates a fault active on `from → to` links during `[start, end)`.
    pub fn new(
        kind: LinkFaultKind,
        from: NodeMatcher,
        to: NodeMatcher,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        LinkFault {
            from,
            to,
            start,
            end,
            kind,
        }
    }

    /// Whether this fault applies to a message sent at `at` from `from` to
    /// `to`.
    pub fn applies(&self, at: SimTime, from: NodeId, to: NodeId) -> bool {
        at >= self.start && at < self.end && self.from.matches(from) && self.to.matches(to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::{ClientId, ReplicaId, ShardId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn c(n: u64) -> NodeId {
        NodeId::Client(ClientId(n))
    }
    fn r(i: u32) -> NodeId {
        NodeId::Replica(ReplicaId::new(ShardId(0), i))
    }

    #[test]
    fn latency_within_bounds() {
        let cfg = NetworkConfig::lan();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let l = cfg.sample_latency(c(1), r(0), &mut rng);
            assert!(l >= cfg.one_way_latency);
            assert!(l <= cfg.one_way_latency + cfg.jitter);
        }
    }

    #[test]
    fn loopback_uses_loopback_latency() {
        let cfg = NetworkConfig::lan();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            cfg.sample_latency(c(1), c(1), &mut rng),
            cfg.loopback_latency
        );
    }

    #[test]
    fn drop_probability_zero_never_drops() {
        let cfg = NetworkConfig::lan();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..1000).all(|_| !cfg.sample_drop(&mut rng)));
    }

    #[test]
    fn drop_probability_is_roughly_respected() {
        let cfg = NetworkConfig::lossy(0.3);
        let mut rng = SmallRng::seed_from_u64(7);
        let drops = (0..10_000).filter(|_| cfg.sample_drop(&mut rng)).count();
        assert!((2_500..3_500).contains(&drops), "drops={drops}");
    }

    #[test]
    fn partition_blocks_cross_traffic_only_when_active() {
        let mut p = Partition::isolating([r(0), r(1)]);
        assert!(!p.blocks(r(0), r(5)));
        p.activate();
        assert!(p.blocks(r(0), r(5)));
        assert!(p.blocks(r(5), r(1)), "blocking is symmetric");
        assert!(
            !p.blocks(r(0), r(1)),
            "within the isolated side traffic flows"
        );
        assert!(
            !p.blocks(r(4), r(5)),
            "outside the isolated side traffic flows"
        );
        p.heal();
        assert!(!p.blocks(r(0), r(5)));
    }

    #[test]
    fn matcher_selects_expected_nodes() {
        assert!(NodeMatcher::Any.matches(c(1)));
        assert!(NodeMatcher::Any.matches(r(0)));
        assert!(NodeMatcher::Clients.matches(c(1)));
        assert!(!NodeMatcher::Clients.matches(r(0)));
        assert!(NodeMatcher::Replicas.matches(r(3)));
        assert!(!NodeMatcher::Replicas.matches(c(2)));
        assert!(NodeMatcher::Node(r(2)).matches(r(2)));
        assert!(!NodeMatcher::Node(r(2)).matches(r(3)));
    }

    #[test]
    fn link_fault_window_and_selectors() {
        let f = LinkFault::new(
            LinkFaultKind::Drop { probability: 1.0 },
            NodeMatcher::Clients,
            NodeMatcher::Node(r(1)),
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        );
        assert!(f.applies(SimTime::from_millis(10), c(1), r(1)));
        assert!(f.applies(SimTime::from_millis(19), c(9), r(1)));
        assert!(!f.applies(SimTime::from_millis(20), c(1), r(1)), "end excl");
        assert!(!f.applies(SimTime::from_millis(9), c(1), r(1)));
        assert!(!f.applies(SimTime::from_millis(15), r(0), r(1)), "sender");
        assert!(!f.applies(SimTime::from_millis(15), c(1), r(2)), "receiver");
    }
}
