//! Network model: latency, jitter, loss, and partitions.

use basil_common::{Duration, NodeId};
use rand::Rng;
use std::collections::HashSet;

/// Configuration of the simulated network.
///
/// The defaults approximate the CloudLab m510 cluster the paper used:
/// 0.15 ms ping (so 75 µs one way), 10 GbE (bandwidth is not modelled; the
/// per-message CPU overhead in the crypto cost model covers serialization).
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Mean one-way latency between distinct nodes.
    pub one_way_latency: Duration,
    /// Uniform jitter added to each message: the actual latency is drawn from
    /// `[one_way_latency, one_way_latency + jitter]`.
    pub jitter: Duration,
    /// Latency of a node talking to itself (loopback).
    pub loopback_latency: Duration,
    /// Probability in `[0, 1)` that a message is silently dropped.
    pub drop_probability: f64,
}

impl NetworkConfig {
    /// LAN profile matching the paper's testbed.
    pub fn lan() -> Self {
        NetworkConfig {
            one_way_latency: Duration::from_micros(75),
            jitter: Duration::from_micros(20),
            loopback_latency: Duration::from_micros(5),
            drop_probability: 0.0,
        }
    }

    /// An idealized instantaneous network, useful in unit tests where only
    /// protocol logic matters.
    pub fn instant() -> Self {
        NetworkConfig {
            one_way_latency: Duration::from_nanos(1),
            jitter: Duration::ZERO,
            loopback_latency: Duration::from_nanos(1),
            drop_probability: 0.0,
        }
    }

    /// A lossy LAN, for fault-injection tests.
    pub fn lossy(drop_probability: f64) -> Self {
        NetworkConfig {
            drop_probability,
            ..NetworkConfig::lan()
        }
    }

    /// Samples the delivery latency for a message from `from` to `to`.
    pub fn sample_latency(&self, from: NodeId, to: NodeId, rng: &mut impl Rng) -> Duration {
        if from == to {
            return self.loopback_latency;
        }
        if self.jitter == Duration::ZERO {
            return self.one_way_latency;
        }
        let extra = rng.gen_range(0..=self.jitter.as_nanos());
        self.one_way_latency + Duration::from_nanos(extra)
    }

    /// Decides whether a message is dropped.
    pub fn sample_drop(&self, rng: &mut impl Rng) -> bool {
        self.drop_probability > 0.0 && rng.gen::<f64>() < self.drop_probability
    }

    /// A guaranteed lower bound on the delivery delay of any message this
    /// network can produce (jitter only ever adds). The parallel runtime
    /// uses it as the default epoch lookahead: no event can schedule a send
    /// closer than this to its own timestamp.
    pub fn min_delay(&self) -> Duration {
        self.one_way_latency.min(self.loopback_latency)
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::lan()
    }
}

/// A dynamic partition: messages between the two sides are dropped while the
/// partition is active. Used by liveness and fallback tests.
#[derive(Clone, Debug, Default)]
pub struct Partition {
    isolated: HashSet<NodeId>,
    active: bool,
}

impl Partition {
    /// Creates an inactive partition isolating `nodes` from everyone else.
    pub fn isolating(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Partition {
            isolated: nodes.into_iter().collect(),
            active: false,
        }
    }

    /// Activates the partition.
    pub fn activate(&mut self) {
        self.active = true;
    }

    /// Heals the partition.
    pub fn heal(&mut self) {
        self.active = false;
    }

    /// Whether the partition currently blocks traffic between `a` and `b`.
    pub fn blocks(&self, a: NodeId, b: NodeId) -> bool {
        if !self.active || a == b {
            return false;
        }
        self.isolated.contains(&a) != self.isolated.contains(&b)
    }

    /// Whether the partition is currently active.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::{ClientId, ReplicaId, ShardId};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn c(n: u64) -> NodeId {
        NodeId::Client(ClientId(n))
    }
    fn r(i: u32) -> NodeId {
        NodeId::Replica(ReplicaId::new(ShardId(0), i))
    }

    #[test]
    fn latency_within_bounds() {
        let cfg = NetworkConfig::lan();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let l = cfg.sample_latency(c(1), r(0), &mut rng);
            assert!(l >= cfg.one_way_latency);
            assert!(l <= cfg.one_way_latency + cfg.jitter);
        }
    }

    #[test]
    fn loopback_uses_loopback_latency() {
        let cfg = NetworkConfig::lan();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            cfg.sample_latency(c(1), c(1), &mut rng),
            cfg.loopback_latency
        );
    }

    #[test]
    fn drop_probability_zero_never_drops() {
        let cfg = NetworkConfig::lan();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..1000).all(|_| !cfg.sample_drop(&mut rng)));
    }

    #[test]
    fn drop_probability_is_roughly_respected() {
        let cfg = NetworkConfig::lossy(0.3);
        let mut rng = SmallRng::seed_from_u64(7);
        let drops = (0..10_000).filter(|_| cfg.sample_drop(&mut rng)).count();
        assert!((2_500..3_500).contains(&drops), "drops={drops}");
    }

    #[test]
    fn partition_blocks_cross_traffic_only_when_active() {
        let mut p = Partition::isolating([r(0), r(1)]);
        assert!(!p.blocks(r(0), r(5)));
        p.activate();
        assert!(p.blocks(r(0), r(5)));
        assert!(p.blocks(r(5), r(1)), "blocking is symmetric");
        assert!(
            !p.blocks(r(0), r(1)),
            "within the isolated side traffic flows"
        );
        assert!(
            !p.blocks(r(4), r(5)),
            "outside the isolated side traffic flows"
        );
        p.heal();
        assert!(!p.blocks(r(0), r(5)));
    }
}
