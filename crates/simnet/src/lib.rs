//! # basil-simnet
//!
//! A deterministic discrete-event cluster simulator.
//!
//! The Basil reproduction runs its protocols — Basil itself and all the
//! baselines — as *sans-io state machines* (see `basil-core`), and this crate
//! provides the cluster they run on: an event queue, a network model with
//! configurable latency, jitter, loss, and partitions, per-node CPU
//! accounting with a configurable core count, and per-node clock skew.
//!
//! ## Why a simulator
//!
//! The paper's evaluation ran on a CloudLab cluster; its claims are about
//! *relative* behaviour (Basil vs the baselines, fast path vs slow path,
//! batching, graceful degradation under Byzantine clients). Reproducing those
//! shapes requires faithfully modelling the two bottlenecks the paper
//! identifies — CPU time spent on cryptography and contention amplified by
//! latency — which the simulator does by charging signature/verification
//! costs to node CPUs (the `basil-crypto` cost model) and by delivering
//! messages with CloudLab-like latencies. Determinism (a seeded RNG drives
//! all jitter and loss) makes every experiment and test reproducible.
//!
//! ## Model
//!
//! * Each node ([`NodeProps`]) has `cores` CPU lanes and a clock skew.
//! * A message delivered to a node waits until a core is free, then its
//!   handler runs; the CPU time the handler charges (via
//!   [`Context::charge`]) occupies that core and delays the handler's
//!   outputs, so overloaded nodes queue work and throughput saturates.
//! * Actors communicate only through messages and self-scheduled
//!   timers ([`Context::schedule_self`]); they never share memory.
//! * The harness can inject messages from the outside and inspect actors
//!   through [`Simulation::actor`] / [`Simulation::actor_mut`].
//!
//! ## Key types
//!
//! * [`Simulation`] — the event loop: dense actor slots, the calendar
//!   event queue, the network model, and the seeded RNG.
//! * [`Actor`] / [`Context`] — the sans-io state-machine interface.
//! * [`NodeProps`] — per-node cores and clock skew.
//! * [`NetworkConfig`] / [`Partition`] — latency, jitter, loss, and
//!   fault-injection partitions.
//! * [`Metrics`] / [`NodeMetrics`] — counters assembled on demand from the
//!   per-slot records.
//!
//! ## Seed and determinism contract
//!
//! A `Simulation` constructed with the same seed, the same actors (added in
//! the same order), and driven by the same `run_until`/`step` calls
//! delivers the *identical* event sequence: events pop in strict
//! `(time, sequence-number)` order, sequence numbers are assigned in
//! deterministic send order, and all jitter/loss randomness comes from the
//! one seeded RNG. The scheduler implementation is free to change (it has:
//! global heap → indexed calendar queue, see [`sim`]) but must preserve
//! this order bit-for-bit; `tests/golden_trace.rs` pins it with a trace
//! hash captured before the rewrite.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod actor;
pub mod metrics;
pub mod network;
pub mod parallel;
pub mod sim;

pub use actor::{Actor, Context};
pub use metrics::{Metrics, NodeMetrics};
pub use network::{LinkFault, LinkFaultKind, NetworkConfig, NodeMatcher, Partition};
pub use parallel::ParallelSimulation;
pub use sim::{Corruptor, NodeProps, Simulation};
