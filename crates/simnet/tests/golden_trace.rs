//! Golden-trace determinism test for the event scheduler.
//!
//! The scheduler contract is: with a fixed seed, the delivery sequence —
//! which event fires, at what simulated time, in what order — is bit-for-bit
//! reproducible, and rewrites of the queue implementation must not change
//! it. This test drives a deliberately messy topology (jittery LAN, message
//! loss, multi-core nodes, timers, a mid-run injection) and folds every
//! delivery into an FNV-1a hash. The expected value was captured from the
//! original `BinaryHeap`-based scheduler; the indexed calendar-queue
//! scheduler must reproduce it exactly.

use basil_common::{ClientId, Duration, NodeId, SimTime};
use basil_simnet::{Actor, Context, NetworkConfig, NodeProps, Simulation};
use std::any::Any;

#[derive(Clone, Debug)]
enum Msg {
    Ping(u32),
    Pong(u32),
    Tick,
}

/// FNV-1a, folded over little-endian u64 words.
#[derive(Default)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn node_word(n: NodeId) -> u64 {
    match n {
        NodeId::Client(c) => c.0,
        NodeId::Replica(r) => (1 << 62) | (u64::from(r.shard.0) << 32) | u64::from(r.index),
    }
}

/// Records every delivery it sees into the trace, echoes pings, and keeps a
/// periodic timer running that re-pings a peer.
struct Tracer {
    peer: NodeId,
    trace: Vec<(u64, u64, u64, u64)>,
    sent: u32,
}

impl Actor<Msg> for Tracer {
    fn on_start(&mut self, ctx: &mut Context<Msg>) {
        for i in 0..3 {
            ctx.send(self.peer, Msg::Ping(i));
        }
        ctx.schedule_self(Duration::from_micros(700), Msg::Tick);
    }

    fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
        let tag = match msg {
            Msg::Ping(i) => {
                ctx.charge(Duration::from_micros(15));
                ctx.send(from, Msg::Pong(i));
                u64::from(i)
            }
            Msg::Pong(i) => {
                if self.sent < 40 {
                    self.sent += 1;
                    ctx.send(from, Msg::Ping(i.wrapping_add(1)));
                }
                (1 << 32) | u64::from(i)
            }
            Msg::Tick => {
                ctx.send(self.peer, Msg::Ping(999));
                ctx.schedule_self(Duration::from_micros(700), Msg::Tick);
                2 << 32
            }
        };
        self.trace.push((
            ctx.now().as_nanos(),
            node_word(ctx.self_id()),
            node_word(from),
            tag,
        ));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn run_trace(seed: u64) -> (u64, u64) {
    let mut sim: Simulation<Msg> = Simulation::new(seed, NetworkConfig::lossy(0.02));
    let ids: Vec<NodeId> = (0..8).map(|i| NodeId::Client(ClientId(i))).collect();
    for (i, id) in ids.iter().enumerate() {
        let peer = ids[(i + 1) % ids.len()];
        sim.add_node(
            *id,
            NodeProps::default().with_cores(1 + (i as u32 % 3)),
            Box::new(Tracer {
                peer,
                trace: Vec::new(),
                sent: 0,
            }),
        );
    }
    // A mid-run injection from an unregistered outside node.
    sim.inject(
        ids[3],
        NodeId::Client(ClientId(99)),
        Msg::Ping(7),
        SimTime::from_millis(2),
    );
    sim.run_until(SimTime::from_millis(20));

    let mut hash = Fnv::new();
    for id in sim.node_ids() {
        let tracer: &Tracer = sim.actor(id).expect("tracer registered");
        for (at, me, from, tag) in &tracer.trace {
            hash.write_u64(*at);
            hash.write_u64(*me);
            hash.write_u64(*from);
            hash.write_u64(*tag);
        }
    }
    (hash.0, sim.metrics().events_processed)
}

/// The reference values, captured from the original global-`BinaryHeap`
/// scheduler. The calendar-queue rewrite pops events in the identical
/// `(time, sequence-number)` order and draws network randomness at the same
/// points, so both the full delivery trace and the event count must match
/// bit-for-bit.
const GOLDEN_HASH: u64 = 1025214319698513995;
const GOLDEN_EVENTS: u64 = 1325;

#[test]
fn delivery_trace_matches_golden_reference() {
    let (hash, events) = run_trace(42);
    assert_eq!(
        (hash, events),
        (GOLDEN_HASH, GOLDEN_EVENTS),
        "scheduler delivery order diverged from the golden trace"
    );
}

#[test]
fn trace_is_stable_across_runs_and_seed_sensitive() {
    assert_eq!(run_trace(42), run_trace(42));
    assert_ne!(run_trace(42).0, run_trace(43).0);
}
