//! # basil-scenario
//!
//! The adversary matrix as *data*: declarative fault scenarios, a
//! deterministic runner, and a seed-driven schedule fuzzer with
//! delta-debugging shrinking.
//!
//! * [`spec`] — the [`ScenarioSpec`] grammar: fault kinds (crash/restart,
//!   partition+heal, drop/corrupt/replay/delay links, equivocation mixes,
//!   clock skew, slow replicas) × timing windows × target selectors, with
//!   distinct crash/deceit budgets (the benign-vs-deceitful split) enforced
//!   at validation time.
//! * [`ron`] — the hand-rolled RON codec for the committed corpus under
//!   `tests/corpus/`.
//! * [`runner`] — compiles a spec onto the simulator seam (link faults,
//!   crashes, partitions, behaviour switches, node-property overrides) and
//!   executes it on Basil or a baseline, serial or parallel, bit-for-bit
//!   identically.
//! * [`mod@fuzz`] — seed-driven schedule generation plus the
//!   safety/liveness/divergence checks.
//! * [`shrink`] — greedy delta debugging: a failing spec is reduced to a
//!   1-minimal set of fault events before it is reported.
//!
//! ```no_run
//! use basil::cluster::RuntimeMode;
//! use basil_scenario::{fuzz, runner};
//!
//! // Replay one generated schedule on both runtimes.
//! let spec = fuzz::generate_spec(0xBA51);
//! let serial = runner::run_basil_spec(&spec, RuntimeMode::Serial);
//! let parallel = runner::run_basil_spec(&spec, RuntimeMode::Parallel(2));
//! assert!(!serial.diverges_from(&parallel));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod fuzz;
pub mod ron;
pub mod runner;
pub mod shrink;
pub mod spec;

pub use fuzz::{fuzz, generate_spec, FuzzFailure, FuzzOptions, FuzzSummary};
pub use ron::{decode, encode};
pub use runner::{drive, run_baseline_spec, run_basil_spec, FailureKind, ScenarioOutcome};
pub use shrink::{shrink_spec, ShrinkResult};
pub use spec::{
    Expectation, FaultBudget, FaultEvent, ScenarioSpec, Selector, SpecError, WorkloadSpec,
};
