//! Compiles a [`ScenarioSpec`] onto the simulator seam and executes it.
//!
//! One spec drives any [`ClusterProtocol`] deployment on either runtime:
//! build-time faults (clock skew, slow replicas) become
//! [`ReplicaPropsOverride`]s, link faults become `basil_simnet`
//! [`LinkFault`]s installed up-front with absolute windows, and the timed
//! actions (crash/restart, partition/heal, misbehave/revert) are walked as
//! a sorted timeline of `run_for` steps. Because every fault compiles to
//! the deterministic simulator's own hooks, replaying the same `(spec,
//! seed)` is bit-for-bit identical on [`RuntimeMode::Serial`] and
//! [`RuntimeMode::Parallel`] — which is exactly what the fuzzer's
//! cross-check asserts.

use crate::spec::{FaultEvent, RecoveryMode, ScenarioSpec, Selector, WorkloadSpec};
use basil::cluster::{ClusterProtocol, ProtocolCluster, ReplicaPropsOverride, RuntimeMode};
use basil::harness::{BasilCluster, ClusterConfig};
use basil::report::RunReport;
use basil::workloads::ycsb::YcsbGenerator;
use basil::{BaselineCluster, BaselineClusterConfig};
use basil::{
    BasilConfig, Duration, NodeId, Partition, ReplicaBehavior, ReplicaId, ShardConfig, ShardId,
    SimTime, SystemConfig, TxId,
};
use basil_baselines::{BaselineConfig, SystemKind};
use basil_core::byzantine::FaultProfile;
use basil_simnet::{LinkFault, LinkFaultKind, NodeMatcher};
use basil_store::mvtso::Decision;
use std::collections::HashMap;

/// Everything a scenario run produces, comparable across runtimes and
/// against pinned corpus expectations.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The runtime the scenario executed on.
    pub runtime: RuntimeMode,
    /// Committed transactions across correct clients (whole run).
    pub committed: u64,
    /// Aborted attempts across correct clients (whole run).
    pub aborted_attempts: u64,
    /// Commits by Byzantine clients (whole run).
    pub byz_committed: u64,
    /// Fast-path decisions (whole run).
    pub fast_path: u64,
    /// Slow-path decisions (whole run).
    pub slow_path: u64,
    /// Fallback recoveries started (whole run).
    pub fallbacks: u64,
    /// Correct-client commits inside the quiet tail (the liveness signal).
    pub tail_committed: u64,
    /// SHA-256 hex digest of the committed transaction-id set.
    pub digest: String,
    /// SHA-256 hex digest over every replica's per-transaction decision
    /// (replica order × sorted transaction ids): pins decision agreement,
    /// not just the committed set.
    pub decisions_digest: String,
    /// The audit failure, if the committed history failed serializability
    /// or decision agreement.
    pub audit_failure: Option<String>,
    /// Simulator metric: messages dropped (crashes, partitions, faults).
    pub messages_dropped: u64,
    /// Simulator metric: messages garbled by corrupt-link faults.
    pub messages_corrupted: u64,
    /// Simulator metric: messages duplicated by replay-link faults.
    pub messages_replayed: u64,
    /// Throughput/latency report over the post-warmup window.
    pub report: RunReport,
}

/// The failure classes the scenario checks can detect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The committed history failed the serializability or
    /// decision-agreement audit (a safety violation).
    Audit,
    /// A liveness-checkable scenario made no progress in the quiet tail.
    Liveness,
    /// Serial and parallel runs of the same spec disagreed.
    Divergence,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Audit => write!(f, "audit"),
            FailureKind::Liveness => write!(f, "liveness"),
            FailureKind::Divergence => write!(f, "divergence"),
        }
    }
}

impl ScenarioOutcome {
    /// Checks this single-run outcome against the spec's invariants:
    /// the safety audit always applies; the liveness-under-budget check
    /// applies when [`ScenarioSpec::liveness_checkable`] holds.
    pub fn check(&self, spec: &ScenarioSpec) -> Option<FailureKind> {
        if self.audit_failure.is_some() {
            return Some(FailureKind::Audit);
        }
        if spec.liveness_checkable() && self.tail_committed == 0 {
            return Some(FailureKind::Liveness);
        }
        None
    }

    /// Whether two runs of the same spec disagree on any decision-bearing
    /// result (counts, committed-set digest, or per-replica decisions).
    pub fn diverges_from(&self, other: &ScenarioOutcome) -> bool {
        self.committed != other.committed
            || self.aborted_attempts != other.aborted_attempts
            || self.byz_committed != other.byz_committed
            || self.fast_path != other.fast_path
            || self.slow_path != other.slow_path
            || self.fallbacks != other.fallbacks
            || self.tail_committed != other.tail_committed
            || self.digest != other.digest
            || self.decisions_digest != other.decisions_digest
    }
}

/// One step of the compiled fault timeline.
#[derive(Clone, Copy)]
enum Action {
    Crash(u32),
    Restart(u32, RecoveryMode),
    PartitionOn(usize),
    PartitionHeal(usize),
    Behave(u32, ReplicaBehavior),
    MarkWarm,
    MarkTail,
}

fn rid(index: u32) -> ReplicaId {
    ReplicaId::new(ShardId(0), index)
}

fn matcher(sel: Selector) -> NodeMatcher {
    match sel {
        Selector::Any => NodeMatcher::Any,
        Selector::Clients => NodeMatcher::Clients,
        Selector::Replicas => NodeMatcher::Replicas,
        Selector::Replica(i) => NodeMatcher::Node(NodeId::Replica(rid(i))),
    }
}

fn link_fault(
    kind: LinkFaultKind,
    from: Selector,
    to: Selector,
    at_ms: u64,
    until_ms: u64,
) -> LinkFault {
    LinkFault::new(
        kind,
        matcher(from),
        matcher(to),
        SimTime::from_millis(at_ms),
        SimTime::from_millis(until_ms),
    )
}

/// Executes `spec`'s fault timeline against an already-built cluster and
/// collects the outcome. Generic over the protocol: the same spec drives
/// Basil and the baselines. Build-time faults (clock skew, slow replicas)
/// must already be part of the cluster's configuration — the protocol
/// front-ends ([`run_basil_spec`], [`run_baseline_spec`]) handle that.
pub fn drive<P: ClusterProtocol>(
    cluster: &mut ProtocolCluster<P>,
    spec: &ScenarioSpec,
) -> ScenarioOutcome {
    // Link faults: installed up-front with absolute windows; the simulator
    // applies them only inside [at, until).
    for ev in &spec.faults {
        let fault = match *ev {
            FaultEvent::DropLink {
                from,
                to,
                at_ms,
                until_ms,
                probability,
            } => link_fault(
                LinkFaultKind::Drop { probability },
                from,
                to,
                at_ms,
                until_ms,
            ),
            FaultEvent::DelayLink {
                from,
                to,
                at_ms,
                until_ms,
                extra_us,
            } => link_fault(
                LinkFaultKind::Delay {
                    extra: Duration::from_micros(extra_us),
                },
                from,
                to,
                at_ms,
                until_ms,
            ),
            FaultEvent::ReplayLink {
                from,
                to,
                at_ms,
                until_ms,
                probability,
            } => link_fault(
                LinkFaultKind::Replay { probability },
                from,
                to,
                at_ms,
                until_ms,
            ),
            FaultEvent::CorruptLink {
                from,
                to,
                at_ms,
                until_ms,
                probability,
            } => link_fault(
                LinkFaultKind::Corrupt { probability },
                from,
                to,
                at_ms,
                until_ms,
            ),
            _ => continue,
        };
        cluster.sim_mut().add_link_fault(fault);
    }

    // Timed actions, sorted by (time, insertion order) so both runtimes walk
    // an identical timeline. The measurement marks come first at their
    // timestamp: a snapshot taken at t precedes any fault injected at t.
    let mut timeline: Vec<(u64, usize, Action)> = Vec::new();
    timeline.push((spec.warmup_ms, 0, Action::MarkWarm));
    timeline.push((spec.tail_start_ms(), 1, Action::MarkTail));
    let mut seq = 2;
    let mut push = |timeline: &mut Vec<(u64, usize, Action)>, ms: u64, a: Action| {
        timeline.push((ms, seq, a));
        seq += 1;
    };
    for ev in &spec.faults {
        match *ev {
            FaultEvent::Crash {
                replica,
                at_ms,
                restart_ms,
                recovery,
            } => {
                push(&mut timeline, at_ms, Action::Crash(replica));
                if let Some(r) = restart_ms {
                    push(&mut timeline, r, Action::Restart(replica, recovery));
                }
            }
            FaultEvent::ProcessKill {
                replica,
                at_ms,
                restart_ms,
            } => {
                // The simulator has no OS processes to SIGKILL; the closest
                // model is a crash-stop that loses all volatile state and
                // recovers from the WAL plus peer catch-up — exactly the
                // amnesia restart. The real-IO supervisor executes the same
                // event as an actual `kill -9` + process relaunch.
                push(&mut timeline, at_ms, Action::Crash(replica));
                if let Some(r) = restart_ms {
                    push(
                        &mut timeline,
                        r,
                        Action::Restart(replica, RecoveryMode::Amnesia),
                    );
                }
            }
            FaultEvent::PartitionReplica {
                replica,
                at_ms,
                heal_ms,
            } => {
                // Partitions are pre-registered inactive; the timeline only
                // toggles them.
                let idx = cluster
                    .sim_mut()
                    .add_partition(Partition::isolating([NodeId::Replica(rid(replica))]));
                push(&mut timeline, at_ms, Action::PartitionOn(idx));
                push(&mut timeline, heal_ms, Action::PartitionHeal(idx));
            }
            FaultEvent::Misbehave {
                replica,
                behavior,
                at_ms,
                revert_ms,
            } => {
                push(&mut timeline, at_ms, Action::Behave(replica, behavior));
                if let Some(r) = revert_ms {
                    push(
                        &mut timeline,
                        r,
                        Action::Behave(replica, ReplicaBehavior::Correct),
                    );
                }
            }
            _ => {}
        }
    }
    timeline.sort_by_key(|(ms, seq, _)| (*ms, *seq));

    let mut warm = None;
    let mut tail = None;
    let mut now_ms = 0u64;
    for (ms, _, action) in timeline {
        if ms > now_ms {
            cluster.run_for(Duration::from_millis(ms - now_ms));
            now_ms = ms;
        }
        match action {
            Action::Crash(r) => cluster.crash_replica(rid(r)),
            Action::Restart(r, RecoveryMode::Warm) => cluster.restart_replica_warm(rid(r)),
            Action::Restart(r, RecoveryMode::Amnesia) => cluster.restart_replica_amnesia(rid(r)),
            Action::PartitionOn(idx) => {
                if let Some(p) = cluster.sim_mut().partition_mut(idx) {
                    p.activate();
                }
            }
            Action::PartitionHeal(idx) => {
                if let Some(p) = cluster.sim_mut().partition_mut(idx) {
                    p.heal();
                }
            }
            Action::Behave(r, b) => cluster.set_replica_behavior(rid(r), b),
            Action::MarkWarm => warm = Some(cluster.snapshot()),
            Action::MarkTail => tail = Some(cluster.snapshot()),
        }
    }
    if spec.duration_ms > now_ms {
        cluster.run_for(Duration::from_millis(spec.duration_ms - now_ms));
    }

    let end = cluster.snapshot();
    let warm = warm.unwrap_or_default();
    let tail = tail.unwrap_or_default();
    let metrics = cluster.sim().metrics();
    ScenarioOutcome {
        runtime: cluster.runtime_mode(),
        committed: end.committed,
        aborted_attempts: end.aborted_attempts,
        byz_committed: end.byz_committed,
        fast_path: end.fast_path,
        slow_path: end.slow_path,
        fallbacks: end.fallbacks,
        tail_committed: end.committed.saturating_sub(tail.committed),
        digest: cluster.committed_history_digest(),
        decisions_digest: decisions_digest(cluster),
        audit_failure: cluster.audit().err().map(|e| e.to_string()),
        messages_dropped: metrics.messages_dropped,
        messages_corrupted: metrics.messages_corrupted,
        messages_replayed: metrics.messages_replayed,
        report: RunReport::between(
            &warm,
            &end,
            Duration::from_millis(spec.duration_ms - spec.warmup_ms),
        )
        .with_runtime(cluster.runtime_mode()),
    }
}

/// SHA-256 hex digest over `(replica, txid, decision)` for every replica ×
/// every committed transaction id (sorted), pinning decision agreement
/// independent of replica iteration order.
fn decisions_digest<P: ClusterProtocol>(cluster: &ProtocolCluster<P>) -> String {
    let mut txids: Vec<TxId> = cluster
        .committed_transactions()
        .iter()
        .map(|tx| tx.id())
        .collect();
    txids.sort_by_key(|t| *t.as_bytes());
    let mut rids: Vec<ReplicaId> = cluster.replica_ids().to_vec();
    rids.sort();
    let mut hasher = basil_crypto::Sha256::new();
    for r in rids {
        if let Some(replica) = cluster.sim().actor::<P::Replica>(NodeId::Replica(r)) {
            for txid in &txids {
                hasher.update(txid.as_bytes());
                hasher.update(&[match P::decision(replica, txid) {
                    None => 0u8,
                    Some(Decision::Commit) => 1,
                    Some(Decision::Abort) => 2,
                }]);
            }
        }
    }
    hasher
        .finalize()
        .as_bytes()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

fn make_generator(spec: &ScenarioSpec, client: u64) -> Box<dyn basil::TxGenerator> {
    let seed = spec.seed.wrapping_add(client.wrapping_mul(7919));
    match spec.workload {
        WorkloadSpec::RwUniform {
            reads,
            writes,
            keys,
        } => Box::new(YcsbGenerator::rw_uniform(
            seed,
            keys,
            reads as usize,
            writes as usize,
        )),
        WorkloadSpec::RwZipf {
            reads,
            writes,
            keys,
            theta,
        } => Box::new(YcsbGenerator::rw_zipf(
            seed,
            keys,
            reads as usize,
            writes as usize,
            theta,
        )),
    }
}

/// The build-time replica-property overrides a spec's clock-skew and
/// slow-replica faults compile to (merged per replica).
fn props_overrides(spec: &ScenarioSpec) -> Vec<(ReplicaId, ReplicaPropsOverride)> {
    let mut map: HashMap<u32, ReplicaPropsOverride> = HashMap::new();
    for ev in &spec.faults {
        match *ev {
            FaultEvent::ClockSkew { replica, skew_us } => {
                map.entry(replica).or_default().clock_skew_ns = Some(skew_us.saturating_mul(1_000));
            }
            FaultEvent::SlowReplica { replica, cores } => {
                map.entry(replica).or_default().cores = Some(cores);
            }
            _ => {}
        }
    }
    let mut out: Vec<(ReplicaId, ReplicaPropsOverride)> =
        map.into_iter().map(|(r, p)| (rid(r), p)).collect();
    out.sort_by_key(|(r, _)| *r);
    out
}

/// Runs `spec` against a Basil deployment on the given runtime and returns
/// the outcome. Panics if the spec fails [`ScenarioSpec::validate`] —
/// validate at the boundary (fuzzer, corpus loader) first.
pub fn run_basil_spec(spec: &ScenarioSpec, mode: RuntimeMode) -> ScenarioOutcome {
    spec.validate().expect("spec validated before running");
    let mut system = SystemConfig::single_shard_f1();
    system.shard = ShardConfig::new(spec.f);
    let mut basil_cfg = BasilConfig::bench(system).with_batch_size(spec.batch_size);
    basil_cfg.relax_st2_validation = spec.relax_st2;
    let mut config = ClusterConfig::basil_default(spec.clients)
        .with_basil(basil_cfg)
        .with_seed(spec.seed)
        .with_runtime(mode);
    if spec.byz_clients > 0 {
        config = config.with_byzantine_clients(
            spec.byz_clients,
            FaultProfile {
                strategy: spec.byz_strategy,
                faulty_fraction: spec.byz_fraction,
            },
        );
    }
    if matches!(mode, RuntimeMode::Parallel(_)) {
        // Force every epoch through the workers: the cross-check should
        // exercise the parallel machinery, not the inline fast path.
        config = config.with_parallel_tuning(None, Some(0));
    }
    for (r, props) in props_overrides(spec) {
        config = config.with_replica_props(r, props);
    }
    let mut cluster = BasilCluster::build(config, |cid| make_generator(spec, cid.0));
    drive(&mut cluster, spec)
}

/// Runs `spec` against one of the baseline systems. The baselines deploy
/// fewer replicas than Basil's `5f + 1` and ignore client strategies and
/// replica misbehaviour they don't implement; fault events targeting
/// replica indices outside the baseline's range are harmless no-ops.
pub fn run_baseline_spec(
    spec: &ScenarioSpec,
    kind: SystemKind,
    mode: RuntimeMode,
) -> ScenarioOutcome {
    spec.validate().expect("spec validated before running");
    let baseline = BaselineConfig::new(kind)
        .with_shards(1)
        .with_batch_size(spec.batch_size);
    let mut config = BaselineClusterConfig::new(baseline, spec.clients)
        .with_seed(spec.seed)
        .with_runtime(mode);
    if matches!(mode, RuntimeMode::Parallel(_)) {
        config = config.with_parallel_tuning(None, Some(0));
    }
    for (r, props) in props_overrides(spec) {
        config = config.with_replica_props(r, props);
    }
    let mut cluster = BaselineCluster::build(config, |cid| make_generator(spec, cid.0));
    drive(&mut cluster, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::base_spec;

    #[test]
    fn base_spec_runs_and_passes_checks_on_serial() {
        let spec = base_spec();
        let out = run_basil_spec(&spec, RuntimeMode::Serial);
        assert!(out.committed > 0, "progress under faults: {out:?}");
        assert!(out.tail_committed > 0, "tail progress: {out:?}");
        assert!(
            out.messages_dropped > 0,
            "crash + drop-link dropped traffic"
        );
        assert_eq!(out.check(&spec), None, "{:?}", out.audit_failure);
    }

    #[test]
    fn replay_is_bit_identical_and_runtime_independent() {
        let spec = base_spec();
        let a = run_basil_spec(&spec, RuntimeMode::Serial);
        let b = run_basil_spec(&spec, RuntimeMode::Serial);
        assert!(!a.diverges_from(&b), "serial replay identical");
        let p = run_basil_spec(&spec, RuntimeMode::Parallel(2));
        assert!(!a.diverges_from(&p), "serial vs parallel: {a:?} vs {p:?}");
        assert_eq!(p.runtime, RuntimeMode::Parallel(2));
    }

    #[test]
    fn amnesia_restart_recovers_and_stays_deterministic() {
        let mut spec = base_spec();
        spec.name = "amnesia".into();
        spec.faults = vec![crate::spec::FaultEvent::Crash {
            replica: 4,
            at_ms: 50,
            restart_ms: Some(90),
            recovery: RecoveryMode::Amnesia,
        }];
        spec.validate().expect("valid");
        let out = run_basil_spec(&spec, RuntimeMode::Serial);
        assert!(out.committed > 0, "progress across the amnesia crash");
        assert!(out.tail_committed > 0, "liveness after recovery");
        assert_eq!(out.check(&spec), None, "{:?}", out.audit_failure);
        let p = run_basil_spec(&spec, RuntimeMode::Parallel(2));
        assert!(
            !out.diverges_from(&p),
            "serial vs parallel: {out:?} vs {p:?}"
        );
    }

    #[test]
    fn skew_slow_and_misbehave_compile_onto_the_cluster() {
        let mut spec = base_spec();
        spec.name = "props".into();
        spec.faults = vec![
            crate::spec::FaultEvent::ClockSkew {
                replica: 2,
                skew_us: 5_000,
            },
            crate::spec::FaultEvent::SlowReplica {
                replica: 2,
                cores: 1,
            },
            crate::spec::FaultEvent::Misbehave {
                replica: 2,
                behavior: basil::ReplicaBehavior::WithholdVotes,
                at_ms: 50,
                revert_ms: Some(100),
            },
        ];
        spec.budget.crash = 1;
        spec.budget.deceit = 1;
        spec.validate().expect("valid");
        let out = run_basil_spec(&spec, RuntimeMode::Serial);
        assert!(out.committed > 0, "{out:?}");
        assert_eq!(out.check(&spec), None, "{:?}", out.audit_failure);
    }

    #[test]
    fn baseline_runs_the_same_spec() {
        let mut spec = base_spec();
        spec.byz_clients = 0; // baselines have no Byzantine-client support
        let out = run_baseline_spec(&spec, SystemKind::Tapir, RuntimeMode::Serial);
        assert!(out.committed > 0, "{out:?}");
        assert!(out.audit_failure.is_none(), "{:?}", out.audit_failure);
    }
}
