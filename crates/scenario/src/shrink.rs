//! Delta-debugging shrinker for failing scenarios.
//!
//! Given a spec that fails some oracle (an audit violation, a liveness
//! stall, a runtime divergence), [`shrink_spec`] searches for a smaller
//! spec that *still* fails, so the committed corpus entry — and the human
//! reading it — sees only the faults that matter. The search is greedy
//! delta debugging in three passes, run to a fixpoint:
//!
//! 1. **Event removal** — drop one fault event at a time; keep the removal
//!    if the spec still fails. At the fixpoint the spec is *1-minimal*:
//!    removing any single remaining event makes the failure vanish.
//! 2. **Byzantine-client reduction** — decrement `byz_clients` toward 0.
//! 3. **Fault simplification** — weaken events toward their mildest form
//!    (an amnesia restart becomes a warm restart), so the repro names the
//!    durability machinery only when it is essential to the failure.
//! 4. **Window narrowing** — halve each remaining event's window toward
//!    its start (1 ms granularity), shortening the repro.
//!
//! Every candidate is checked with [`ScenarioSpec::validate`] first, so
//! the shrinker never hands the oracle (which typically runs a full
//! simulation) an ill-formed spec.

use crate::spec::{FaultEvent, RecoveryMode, ScenarioSpec};

/// Outcome of a shrink run: the smallest still-failing spec found and how
/// many oracle invocations the search spent.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// The minimized spec (still fails the oracle).
    pub spec: ScenarioSpec,
    /// Number of times the oracle ran (each is typically a simulation).
    pub oracle_runs: u64,
}

/// Narrows `ev`'s window to roughly half, toward the start. Returns `None`
/// when the event has no window or it can't shrink further.
fn narrowed(ev: &FaultEvent) -> Option<FaultEvent> {
    let halve = |start: u64, end: u64| -> Option<u64> {
        let mid = start + (end - start) / 2;
        (mid > start).then_some(mid)
    };
    let mut out = ev.clone();
    match &mut out {
        FaultEvent::Crash {
            at_ms,
            restart_ms: Some(r),
            ..
        }
        | FaultEvent::ProcessKill {
            at_ms,
            restart_ms: Some(r),
            ..
        } => *r = halve(*at_ms, *r)?,
        FaultEvent::PartitionReplica { at_ms, heal_ms, .. } => *heal_ms = halve(*at_ms, *heal_ms)?,
        FaultEvent::DropLink {
            at_ms, until_ms, ..
        }
        | FaultEvent::DelayLink {
            at_ms, until_ms, ..
        }
        | FaultEvent::ReplayLink {
            at_ms, until_ms, ..
        }
        | FaultEvent::CorruptLink {
            at_ms, until_ms, ..
        } => *until_ms = halve(*at_ms, *until_ms)?,
        FaultEvent::Misbehave {
            at_ms,
            revert_ms: Some(r),
            ..
        } => *r = halve(*at_ms, *r)?,
        _ => return None,
    }
    Some(out)
}

/// Weakens `ev` one notch toward its mildest form. Returns `None` when it
/// is already as mild as it gets.
fn simplified(ev: &FaultEvent) -> Option<FaultEvent> {
    match ev {
        // A process kill is the harshest crash; the next-milder rung is the
        // in-simulator amnesia crash (which the Crash arm below can weaken
        // further to a warm restart).
        FaultEvent::ProcessKill {
            replica,
            at_ms,
            restart_ms,
        } => Some(FaultEvent::Crash {
            replica: *replica,
            at_ms: *at_ms,
            restart_ms: *restart_ms,
            recovery: RecoveryMode::Amnesia,
        }),
        FaultEvent::Crash {
            recovery: RecoveryMode::Amnesia,
            ..
        } => {
            let mut out = ev.clone();
            let FaultEvent::Crash { recovery, .. } = &mut out else {
                unreachable!()
            };
            *recovery = RecoveryMode::Warm;
            Some(out)
        }
        _ => None,
    }
}

/// Shrinks `spec` against `still_fails` and returns the smallest
/// still-failing spec found. `still_fails` must return `true` for the
/// original spec (asserted); it is only ever called with valid specs.
pub fn shrink_spec(
    spec: &ScenarioSpec,
    mut still_fails: impl FnMut(&ScenarioSpec) -> bool,
) -> ShrinkResult {
    let mut runs: u64 = 0;
    let mut fails = |candidate: &ScenarioSpec| -> bool {
        if candidate.validate().is_err() {
            return false;
        }
        runs += 1;
        still_fails(candidate)
    };
    assert!(
        fails(spec),
        "shrink_spec needs a failing spec to start from"
    );
    let mut best = spec.clone();

    loop {
        let before_events = best.faults.len();
        let before_byz = best.byz_clients;
        let before = best.clone();

        // Pass 1: greedy single-event removal to a fixpoint (1-minimality).
        let mut changed = true;
        while changed {
            changed = false;
            let mut i = 0;
            while i < best.faults.len() {
                let mut candidate = best.clone();
                candidate.faults.remove(i);
                if fails(&candidate) {
                    best = candidate;
                    changed = true;
                    // Same index now holds the next event.
                } else {
                    i += 1;
                }
            }
        }

        // Pass 2: fewer Byzantine clients.
        while best.byz_clients > 0 {
            let mut candidate = best.clone();
            candidate.byz_clients -= 1;
            if fails(&candidate) {
                best = candidate;
            } else {
                break;
            }
        }

        // Pass 3: weaken events toward their mildest form (amnesia restarts
        // become warm restarts when the WAL/catch-up path is incidental).
        for i in 0..best.faults.len() {
            if let Some(ev) = simplified(&best.faults[i]) {
                let mut candidate = best.clone();
                candidate.faults[i] = ev;
                if fails(&candidate) {
                    best = candidate;
                }
            }
        }

        // Pass 4: narrow each event's window toward its start.
        for i in 0..best.faults.len() {
            while let Some(ev) = narrowed(&best.faults[i]) {
                let mut candidate = best.clone();
                candidate.faults[i] = ev;
                if fails(&candidate) {
                    best = candidate;
                } else {
                    break;
                }
            }
        }

        // Later passes can unlock earlier ones (a narrowed window can make
        // another event removable), so iterate to a joint fixpoint.
        if best.faults.len() == before_events && best.byz_clients == before_byz && best == before {
            break;
        }
    }

    ShrinkResult {
        spec: best,
        oracle_runs: runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{base_spec, FaultEvent, RecoveryMode, Selector};

    /// A planted synthetic bug: the "failure" fires iff the spec both
    /// crashes replica 2 and has any partition event. Cheap to evaluate,
    /// so the minimality property can be checked exhaustively.
    fn planted_bug(spec: &ScenarioSpec) -> bool {
        let crashes_r2 = spec
            .faults
            .iter()
            .any(|ev| matches!(ev, FaultEvent::Crash { replica: 2, .. }));
        let partitions = spec
            .faults
            .iter()
            .any(|ev| matches!(ev, FaultEvent::PartitionReplica { .. }));
        crashes_r2 && partitions
    }

    /// A noisy spec that triggers the planted bug: the two essential events
    /// are buried among irrelevant ones.
    fn noisy_failing_spec() -> ScenarioSpec {
        let mut spec = base_spec();
        spec.name = "planted".into();
        spec.budget.crash = 3;
        spec.budget.deceit = 1;
        spec.f = 3; // room for several benign targets within the budget
        spec.faults = vec![
            FaultEvent::DropLink {
                from: Selector::Any,
                to: Selector::Any,
                at_ms: 40,
                until_ms: 120,
                probability: 0.1,
            },
            FaultEvent::Crash {
                replica: 2,
                at_ms: 50,
                restart_ms: Some(90),
                recovery: RecoveryMode::Amnesia,
            },
            FaultEvent::DelayLink {
                from: Selector::Clients,
                to: Selector::Replicas,
                at_ms: 30,
                until_ms: 130,
                extra_us: 200,
            },
            FaultEvent::PartitionReplica {
                replica: 7,
                at_ms: 60,
                heal_ms: 110,
            },
            FaultEvent::SlowReplica {
                replica: 9,
                cores: 1,
            },
        ];
        assert!(spec.validate().is_ok(), "{:?}", spec.validate());
        assert!(planted_bug(&spec));
        spec
    }

    #[test]
    fn planted_bug_shrinks_to_its_essential_events() {
        let spec = noisy_failing_spec();
        let result = shrink_spec(&spec, planted_bug);
        let shrunk = result.spec;
        assert!(planted_bug(&shrunk), "shrunk spec still reproduces");
        assert!(
            shrunk.faults.iter().all(|ev| !matches!(
                ev,
                FaultEvent::Crash {
                    recovery: RecoveryMode::Amnesia,
                    ..
                }
            )),
            "the planted bug ignores recovery mode, so the amnesia crash \
             simplifies to a warm one: {:?}",
            shrunk.faults
        );
        assert!(
            shrunk.faults.len() <= 3,
            "shrunk to <= 3 events, got {:?}",
            shrunk.faults
        );
        assert_eq!(shrunk.faults.len(), 2, "exactly the two essential events");
        assert_eq!(shrunk.byz_clients, 0, "byz clients were irrelevant");
    }

    #[test]
    fn essential_amnesia_survives_simplification() {
        let needs_amnesia = |spec: &ScenarioSpec| {
            spec.faults.iter().any(|ev| {
                matches!(
                    ev,
                    FaultEvent::Crash {
                        recovery: RecoveryMode::Amnesia,
                        ..
                    }
                )
            })
        };
        let result = shrink_spec(&noisy_failing_spec(), needs_amnesia);
        assert!(needs_amnesia(&result.spec), "amnesia was essential");
        assert_eq!(result.spec.faults.len(), 1, "{:?}", result.spec.faults);
    }

    #[test]
    fn shrunk_spec_is_one_minimal() {
        let result = shrink_spec(&noisy_failing_spec(), planted_bug);
        let shrunk = result.spec;
        for i in 0..shrunk.faults.len() {
            let mut smaller = shrunk.clone();
            smaller.faults.remove(i);
            assert!(
                smaller.validate().is_err() || !planted_bug(&smaller),
                "removing event {i} still fails: not 1-minimal"
            );
        }
    }

    #[test]
    fn shrinking_preserves_validity() {
        let result = shrink_spec(&noisy_failing_spec(), planted_bug);
        result.spec.validate().expect("shrunk spec is valid");
        assert!(result.oracle_runs > 0);
    }

    #[test]
    #[should_panic(expected = "failing spec")]
    fn rejects_a_passing_spec() {
        shrink_spec(&base_spec(), |_| false);
    }
}
