//! Seed-driven schedule fuzzing: generate → run → check → shrink.
//!
//! Every schedule is a [`ScenarioSpec`] generated *valid by construction*
//! from a single `u64` seed (so a failure report is just a seed plus the
//! shrunk spec). Each schedule runs on the serial runtime and is checked
//! against the safety audit and — when the spec qualifies — the
//! liveness-under-budget check; every `cross_check_every`-th schedule
//! additionally replays on `Parallel(2)` and must be bit-for-bit
//! identical. Failures are minimized with [`crate::shrink::shrink_spec`]
//! using an oracle that reproduces the *same failure class*, and reported
//! with their canonical RON encoding for the corpus.

use crate::ron;
use crate::runner::{run_baseline_spec, run_basil_spec, FailureKind, ScenarioOutcome};
use crate::shrink::shrink_spec;
use crate::spec::{FaultBudget, FaultEvent, RecoveryMode, ScenarioSpec, Selector, WorkloadSpec};
use basil::cluster::RuntimeMode;
use basil_baselines::SystemKind;
use basil_core::{ClientStrategy, ReplicaBehavior};
use rand::{Rng, SeedableRng};

/// Fuzzing campaign parameters.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Number of schedules to attempt.
    pub count: u64,
    /// Base seed: schedule `i` uses seed `seed_base + i`.
    pub seed_base: u64,
    /// Run the serial-vs-parallel cross-check on every `n`-th schedule
    /// (0 disables cross-checking).
    pub cross_check_every: u64,
    /// Replay every `n`-th schedule (with Byzantine clients stripped)
    /// against a baseline system, cycling through the baseline kinds, and
    /// flag any serializability-audit failure (0 disables baseline runs).
    pub baseline_every: u64,
    /// Wall-clock budget; the campaign stops early when exceeded.
    pub wall_budget: Option<std::time::Duration>,
    /// Stop after this many distinct failures (each failure costs many
    /// shrink runs; a broken build would otherwise burn the whole budget).
    pub max_failures: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            count: 1_000,
            seed_base: 0xBA51,
            cross_check_every: 16,
            baseline_every: 25,
            wall_budget: None,
            max_failures: 5,
        }
    }
}

/// One minimized failure found by the campaign.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// The schedule seed that produced the failure.
    pub seed: u64,
    /// The failure class (audit, liveness, or divergence).
    pub kind: FailureKind,
    /// `Some(kind)` when the failure came from a baseline-system replay of
    /// the schedule rather than from Basil itself.
    pub baseline: Option<SystemKind>,
    /// The generated spec, before shrinking.
    pub original: ScenarioSpec,
    /// The delta-debugged minimal spec (still fails the same way).
    pub shrunk: ScenarioSpec,
    /// Oracle invocations the shrink spent (each is a simulation).
    pub shrink_runs: u64,
}

impl FuzzFailure {
    /// The shrunk spec in canonical RON, ready to commit to the corpus.
    pub fn corpus_entry(&self) -> String {
        let system = match self.baseline {
            Some(kind) => format!("{kind:?}"),
            None => "Basil".into(),
        };
        let mut header = format!(
            "// fuzz failure: seed {} ({} on {}), shrunk from {} fault events\n",
            self.seed,
            self.kind,
            system,
            self.original.faults.len()
        );
        header.push_str(&ron::encode(&self.shrunk));
        header
    }
}

/// Result of a fuzzing campaign.
#[derive(Clone, Debug, Default)]
pub struct FuzzSummary {
    /// Schedules generated and executed.
    pub schedules_run: u64,
    /// Of those, how many also ran the parallel cross-check.
    pub cross_checked: u64,
    /// Of those, how many also replayed against a baseline system.
    pub baseline_checked: u64,
    /// Minimized failures, in discovery order.
    pub failures: Vec<FuzzFailure>,
    /// Whether the wall-clock budget stopped the campaign early.
    pub budget_exhausted: bool,
}

/// Deterministically generates schedule `seed`'s scenario. The generator
/// samples deployments (mostly `f = 1`, sometimes `f = 2`), workloads, and
/// 0–3 budget-respecting fault events with windows that close before the
/// quiet tail, so most schedules keep the liveness check armed. Crashes
/// split between warm and amnesia restarts, exercising the WAL-replay and
/// peer catch-up machinery. The result always passes
/// [`ScenarioSpec::validate`].
pub fn generate_spec(seed: u64) -> ScenarioSpec {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ 0x5eed_5eed_5eed_5eed);
    let clients = rng.gen_range(4..=6u32);
    let byz_clients = rng.gen_range(0..=2u32);
    let byz_strategy = match rng.gen_range(0..3u32) {
        0 => ClientStrategy::StallEarly,
        1 => ClientStrategy::StallLate,
        _ => ClientStrategy::EquivReal,
    };
    let duration_ms = rng.gen_range(120..=160u64);
    let warmup_ms = 30;
    let tail_ms = 50;
    let tail_start = duration_ms - tail_ms;

    let workload = if rng.gen_bool(0.5) {
        WorkloadSpec::RwUniform {
            reads: rng.gen_range(1..=2u32),
            writes: 2,
            keys: rng.gen_range(500..=5_000u64),
        }
    } else {
        WorkloadSpec::RwZipf {
            reads: 2,
            writes: 2,
            keys: rng.gen_range(500..=5_000u64),
            theta: rng.gen_range(1..=9u32) as f64 / 10.0,
        }
    };

    // Mostly the minimal f = 1 deployment; occasionally f = 2 (n = 11),
    // which grows the quorums and the fallback vote thresholds.
    let f = if rng.gen_bool(0.2) { 2u32 } else { 1u32 };
    let n = 5 * f + 1;

    // One benign target, one deceit target. Usually the same replica, so
    // the combined faulty set stays within f and the schedule keeps the
    // liveness check armed; sometimes distinct, which exercises the
    // audit-only regime (validation still holds — budgets are per class).
    let benign_target = rng.gen_range(0..n);
    let deceit_target = if rng.gen_bool(0.3) {
        rng.gen_range(0..n)
    } else {
        benign_target
    };

    let mut faults = Vec::new();
    for _ in 0..rng.gen_range(0..=3u32) {
        // A window that opens after warmup starts and closes before the
        // quiet tail (2 ms minimum width).
        let at_ms = rng.gen_range(32..=tail_start - 10);
        let until_ms = rng.gen_range(at_ms + 2..=tail_start);
        faults.push(match rng.gen_range(0..9u32) {
            0 => FaultEvent::Crash {
                replica: benign_target,
                at_ms,
                restart_ms: Some(until_ms),
                recovery: if rng.gen_bool(0.5) {
                    RecoveryMode::Amnesia
                } else {
                    RecoveryMode::Warm
                },
            },
            1 => FaultEvent::PartitionReplica {
                replica: benign_target,
                at_ms,
                heal_ms: until_ms,
            },
            2 => FaultEvent::DropLink {
                from: Selector::Clients,
                to: Selector::Replica(benign_target),
                at_ms,
                until_ms,
                probability: rng.gen_range(2..=8u32) as f64 / 10.0,
            },
            3 => FaultEvent::DelayLink {
                from: Selector::Any,
                to: Selector::Any,
                at_ms,
                until_ms,
                extra_us: rng.gen_range(100..=500u64),
            },
            4 => FaultEvent::ReplayLink {
                from: Selector::Any,
                to: Selector::Replica(benign_target),
                at_ms,
                until_ms,
                probability: rng.gen_range(1..=5u32) as f64 / 10.0,
            },
            5 => FaultEvent::CorruptLink {
                from: Selector::Replica(deceit_target),
                to: Selector::Any,
                at_ms,
                until_ms,
                probability: rng.gen_range(1..=4u32) as f64 / 10.0,
            },
            6 => FaultEvent::ClockSkew {
                replica: benign_target,
                skew_us: rng.gen_range(-8_000..=8_000i64),
            },
            7 => FaultEvent::SlowReplica {
                replica: benign_target,
                cores: rng.gen_range(1..=4u32),
            },
            _ => FaultEvent::Misbehave {
                replica: deceit_target,
                behavior: match rng.gen_range(0..3u32) {
                    0 => ReplicaBehavior::WithholdVotes,
                    1 => ReplicaBehavior::AlwaysVoteAbort,
                    _ => ReplicaBehavior::IgnoreReads,
                },
                at_ms,
                revert_ms: Some(until_ms),
            },
        });
    }

    let spec = ScenarioSpec {
        name: format!("fuzz-{seed}"),
        seed,
        clients,
        byz_clients,
        byz_strategy,
        byz_fraction: 1.0,
        f,
        batch_size: *[1u32, 8, 16]
            .get(rng.gen_range(0..3usize))
            .expect("in range"),
        relax_st2: false,
        warmup_ms,
        duration_ms,
        tail_ms,
        budget: FaultBudget {
            crash: 1,
            deceit: 1,
        },
        workload,
        faults,
        expect: None,
    };
    spec.validate()
        .unwrap_or_else(|e| panic!("generator produced invalid spec for seed {seed}: {e}"));
    spec
}

/// Runs one schedule on the serial runtime and classifies the result.
pub fn check_spec(spec: &ScenarioSpec) -> (ScenarioOutcome, Option<FailureKind>) {
    let outcome = run_basil_spec(spec, RuntimeMode::Serial);
    let verdict = outcome.check(spec);
    (outcome, verdict)
}

/// Replays `spec` on `Parallel(2)` and compares against the serial
/// outcome. Any disagreement is a [`FailureKind::Divergence`].
pub fn cross_check(spec: &ScenarioSpec, serial: &ScenarioOutcome) -> Option<FailureKind> {
    let parallel = run_basil_spec(spec, RuntimeMode::Parallel(2));
    serial
        .diverges_from(&parallel)
        .then_some(FailureKind::Divergence)
}

/// The baseline kinds the campaign cycles through.
const BASELINE_KINDS: [SystemKind; 3] = [
    SystemKind::Tapir,
    SystemKind::TxHotstuff,
    SystemKind::TxBftSmart,
];

/// The Byzantine-free variant of `spec` that the baseline adapters can
/// run: Byzantine clients and timed `Misbehave` events are stripped (the
/// baselines implement no replica misbehaviour and would refuse the
/// injection); corrupt links stay — garbled traffic is a network fault
/// every baseline must survive.
pub fn baseline_variant(spec: &ScenarioSpec) -> ScenarioSpec {
    let mut base = spec.clone();
    base.byz_clients = 0;
    base.faults
        .retain(|ev| !matches!(ev, FaultEvent::Misbehave { .. }));
    base
}

/// Runs `spec` (which must have no Byzantine clients) against a baseline
/// system on the serial runtime and reports a safety-audit failure, if
/// any. Baselines deploy fewer replicas and make no liveness promise under
/// Basil-sized fault schedules, so only the audit applies.
pub fn check_baseline_spec(spec: &ScenarioSpec, kind: SystemKind) -> Option<FailureKind> {
    let outcome = run_baseline_spec(spec, kind, RuntimeMode::Serial);
    outcome
        .audit_failure
        .is_some()
        .then_some(FailureKind::Audit)
}

/// The shrink oracle for a failure class: does `candidate` still fail the
/// same way?
fn reproduces(candidate: &ScenarioSpec, kind: FailureKind) -> bool {
    match kind {
        FailureKind::Audit | FailureKind::Liveness => {
            let (_, verdict) = check_spec(candidate);
            verdict == Some(kind)
        }
        FailureKind::Divergence => {
            let serial = run_basil_spec(candidate, RuntimeMode::Serial);
            cross_check(candidate, &serial).is_some()
        }
    }
}

/// Runs a fuzzing campaign. `progress` is called after every schedule with
/// `(schedules_run, failures_found)` — the CLI uses it for heartbeat
/// output; tests pass a no-op.
pub fn fuzz(opts: &FuzzOptions, mut progress: impl FnMut(u64, usize)) -> FuzzSummary {
    let started = std::time::Instant::now();
    let mut summary = FuzzSummary::default();
    for i in 0..opts.count {
        if let Some(budget) = opts.wall_budget {
            if started.elapsed() >= budget {
                summary.budget_exhausted = true;
                break;
            }
        }
        if summary.failures.len() >= opts.max_failures {
            break;
        }
        let seed = opts.seed_base.wrapping_add(i);
        let spec = generate_spec(seed);
        let (serial, mut verdict) = check_spec(&spec);
        if verdict.is_none() && opts.cross_check_every != 0 && i % opts.cross_check_every == 0 {
            summary.cross_checked += 1;
            verdict = cross_check(&spec, &serial);
        }
        summary.schedules_run += 1;
        if let Some(kind) = verdict {
            let shrunk = shrink_spec(&spec, |candidate| reproduces(candidate, kind));
            summary.failures.push(FuzzFailure {
                seed,
                kind,
                baseline: None,
                original: spec,
                shrunk: shrunk.spec,
                shrink_runs: shrunk.oracle_runs,
            });
        } else if opts.baseline_every != 0 && i % opts.baseline_every == 0 {
            // Replay the Byzantine-free variant of the schedule on a
            // baseline system: the same fault grammar fuzzes Tapir and the
            // ordered 2PC baselines, cycling through the kinds.
            let base = baseline_variant(&spec);
            let kind = BASELINE_KINDS[(i / opts.baseline_every) as usize % BASELINE_KINDS.len()];
            summary.baseline_checked += 1;
            if let Some(failure) = check_baseline_spec(&base, kind) {
                let shrunk = shrink_spec(&base, |candidate| {
                    check_baseline_spec(candidate, kind).is_some()
                });
                summary.failures.push(FuzzFailure {
                    seed,
                    kind: failure,
                    baseline: Some(kind),
                    original: base,
                    shrunk: shrunk.spec,
                    shrink_runs: shrunk.oracle_runs,
                });
            }
        }
        progress(summary.schedules_run, summary.failures.len());
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_variant_of_a_misbehave_schedule_runs_clean() {
        // The baselines refuse replica-misbehaviour injection outright, so
        // the baseline replay must strip `Misbehave` events (alongside
        // Byzantine clients) before running — a generated schedule that
        // contains one must not panic the campaign.
        let with_misbehave = (0..500u64)
            .map(generate_spec)
            .find(|s| {
                s.faults
                    .iter()
                    .any(|ev| matches!(ev, FaultEvent::Misbehave { .. }))
            })
            .expect("the generator produces Misbehave schedules");
        let base = baseline_variant(&with_misbehave);
        base.validate().expect("the stripped variant stays valid");
        assert_eq!(base.byz_clients, 0);
        assert!(base
            .faults
            .iter()
            .all(|ev| !matches!(ev, FaultEvent::Misbehave { .. })));
        assert_eq!(
            check_baseline_spec(&base, SystemKind::Tapir),
            None,
            "the deceit-free schedule passes the baseline audit"
        );
    }

    #[test]
    fn generated_specs_are_valid_and_deterministic() {
        for seed in 0..200u64 {
            let a = generate_spec(seed);
            a.validate().expect("valid");
            assert_eq!(a, generate_spec(seed), "same seed, same spec");
        }
        assert_ne!(generate_spec(1), generate_spec(2), "seeds differ");
    }

    #[test]
    fn generator_covers_the_fault_space() {
        let mut kinds = std::collections::BTreeSet::new();
        let mut liveness_armed = 0u32;
        let mut amnesia_crashes = 0u32;
        let mut warm_crashes = 0u32;
        let mut f2_deployments = 0u32;
        for seed in 0..300u64 {
            let spec = generate_spec(seed);
            if spec.liveness_checkable() {
                liveness_armed += 1;
            }
            if spec.f == 2 {
                f2_deployments += 1;
            }
            for ev in &spec.faults {
                if let FaultEvent::Crash { recovery, .. } = ev {
                    match recovery {
                        crate::spec::RecoveryMode::Amnesia => amnesia_crashes += 1,
                        crate::spec::RecoveryMode::Warm => warm_crashes += 1,
                    }
                }
                // A stable per-variant key (Discriminant is not Ord).
                kinds.insert(match ev {
                    FaultEvent::Crash { .. } => 0,
                    FaultEvent::PartitionReplica { .. } => 1,
                    FaultEvent::DropLink { .. } => 2,
                    FaultEvent::DelayLink { .. } => 3,
                    FaultEvent::ReplayLink { .. } => 4,
                    FaultEvent::CorruptLink { .. } => 5,
                    FaultEvent::ClockSkew { .. } => 6,
                    FaultEvent::SlowReplica { .. } => 7,
                    FaultEvent::Misbehave { .. } => 8,
                    // Not generated: SIGKILL only differs from an amnesia
                    // crash under the real-IO runtime, not the simulator.
                    FaultEvent::ProcessKill { .. } => 9,
                });
            }
        }
        assert_eq!(kinds.len(), 9, "all nine fault kinds appear");
        assert!(
            liveness_armed > 100,
            "liveness armed often: {liveness_armed}"
        );
        assert!(amnesia_crashes > 0, "amnesia crashes are generated");
        assert!(warm_crashes > 0, "warm crashes are generated");
        assert!(
            f2_deployments > 0 && f2_deployments < 150,
            "f = 2 appears as the minority: {f2_deployments}"
        );
    }

    #[test]
    fn small_campaign_passes_clean() {
        let opts = FuzzOptions {
            count: 12,
            seed_base: 0xBA51,
            cross_check_every: 6,
            baseline_every: 5,
            wall_budget: None,
            max_failures: 5,
        };
        let summary = fuzz(&opts, |_, _| {});
        assert_eq!(summary.schedules_run, 12);
        assert!(summary.cross_checked >= 2);
        assert!(summary.baseline_checked >= 1, "baselines were fuzzed too");
        assert!(
            summary.failures.is_empty(),
            "clean build has no failures: {:#?}",
            summary
                .failures
                .iter()
                .map(|f| f.corpus_entry())
                .collect::<Vec<_>>()
        );
        assert!(!summary.budget_exhausted);
    }

    #[test]
    fn wall_budget_stops_the_campaign() {
        let opts = FuzzOptions {
            count: 1_000_000,
            wall_budget: Some(std::time::Duration::from_millis(200)),
            ..FuzzOptions::default()
        };
        let summary = fuzz(&opts, |_, _| {});
        assert!(summary.budget_exhausted);
        assert!(summary.schedules_run < 1_000_000);
    }
}
