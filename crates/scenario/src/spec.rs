//! The declarative scenario grammar: deployments × fault events × budgets.
//!
//! A [`ScenarioSpec`] is *data* — it names a deployment (clients, Byzantine
//! client mix, `f`, batching, workload), a run schedule (warmup, total
//! duration, quiet tail), a fault budget, and a list of timed
//! [`FaultEvent`]s. The runner (`crate::runner`) compiles a spec onto the
//! simulator seam — `basil_simnet`'s crash/partition/link-fault hooks and
//! `basil_core`'s behaviour knobs — so one spec drives Basil and the
//! baselines, on the serial and the parallel runtime, bit-for-bit
//! identically.
//!
//! ## Fault taxonomy and budgets
//!
//! Following Basilic's split of the fault space into *benign* (crashing)
//! and *deceitful* (lying) replicas, a spec carries a [`FaultBudget`] with
//! separate `crash` and `deceit` allowances, enforced at validation time:
//!
//! * **benign** — the targets of [`FaultEvent::Crash`],
//!   [`FaultEvent::ProcessKill`],
//!   [`FaultEvent::PartitionReplica`], [`FaultEvent::SlowReplica`],
//!   [`FaultEvent::ClockSkew`], and of *targeted* omission link faults
//!   (drop/delay/replay aimed at one replica). These replicas follow the
//!   protocol but may be late or unreachable.
//! * **deceitful** — the targets of [`FaultEvent::Misbehave`] and of
//!   targeted [`FaultEvent::CorruptLink`] faults. These replicas (or their
//!   links) actively deviate.
//!
//! Broad-matcher link faults (e.g. `Drop(from: Any, to: Any)`) model a
//! lossy *network* rather than a faulty replica; they consume no replica
//! budget but do disable the liveness check unless their windows close
//! before the quiet tail.
//!
//! Safety requires `deceit ≤ f` (Basil's n = 5f+1 tolerates at most `f`
//! Byzantine replicas); liveness additionally requires
//! `crash + deceit ≤ f`, which is why [`ScenarioSpec::liveness_checkable`]
//! is a property of the spec, not a separate assertion mode.

use basil_core::{ClientStrategy, ReplicaBehavior};
use std::collections::BTreeSet;

/// Distinct allowances for benign (crashing/slow) and deceitful (lying)
/// replicas, after Basilic's benign-vs-deceitful fault split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultBudget {
    /// Maximum number of distinct replicas that may crash, be partitioned,
    /// run slow, or run with a skewed clock.
    pub crash: u32,
    /// Maximum number of distinct replicas that may lie (misbehave, or
    /// corrupt traffic on their links). Safety requires `deceit ≤ f`.
    pub deceit: u32,
}

/// One side of a link-fault selector (single-shard deployments).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Selector {
    /// Every node.
    Any,
    /// Every client.
    Clients,
    /// Every replica.
    Replicas,
    /// Replica `index` of shard 0.
    Replica(u32),
}

impl Selector {
    /// The replica index this selector targets, if it targets exactly one.
    pub fn targeted_replica(&self) -> Option<u32> {
        match self {
            Selector::Replica(i) => Some(*i),
            _ => None,
        }
    }
}

/// What a crashed replica remembers when it comes back.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Warm restart: volatile state survives (the pre-durability model —
    /// the process pauses and resumes with its memory intact).
    #[default]
    Warm,
    /// Amnesia restart: all volatile state is lost; the replica rebuilds
    /// from its write-ahead log and then catches up missed decisions from
    /// peers before serving traffic again.
    Amnesia,
}

impl std::fmt::Display for RecoveryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryMode::Warm => write!(f, "Warm"),
            RecoveryMode::Amnesia => write!(f, "Amnesia"),
        }
    }
}

/// A timed fault event. Times are milliseconds from the start of the run;
/// windows are `[at_ms, until_ms)`.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Crash-stop `replica` at `at_ms`; restart it at `restart_ms` if set.
    Crash {
        /// Target replica index (shard 0).
        replica: u32,
        /// Crash time.
        at_ms: u64,
        /// Restart time (`None` = stays down).
        restart_ms: Option<u64>,
        /// What the replica remembers when it restarts.
        recovery: RecoveryMode,
    },
    /// `kill -9` the replica's OS process at `at_ms`; start a replacement
    /// process at `restart_ms` if set. The real-IO supervisor delivers an
    /// actual `SIGKILL` and relaunches the `basil-node` binary over the
    /// surviving WAL file; the simulator models the same fault as a
    /// crash-stop with [`RecoveryMode::Amnesia`] recovery (volatile state
    /// lost, rebuilt from the WAL plus peer catch-up).
    ProcessKill {
        /// Target replica index (shard 0).
        replica: u32,
        /// SIGKILL delivery time.
        at_ms: u64,
        /// Process relaunch time (`None` = stays down).
        restart_ms: Option<u64>,
    },
    /// Isolate `replica` from everyone else during `[at_ms, heal_ms)`.
    PartitionReplica {
        /// Target replica index.
        replica: u32,
        /// Partition activation time.
        at_ms: u64,
        /// Heal time.
        heal_ms: u64,
    },
    /// Drop matching messages with `probability` during the window.
    DropLink {
        /// Sender selector.
        from: Selector,
        /// Receiver selector.
        to: Selector,
        /// Window start.
        at_ms: u64,
        /// Window end (exclusive).
        until_ms: u64,
        /// Per-message drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Add `extra_us` of one-way delay to matching messages.
    DelayLink {
        /// Sender selector.
        from: Selector,
        /// Receiver selector.
        to: Selector,
        /// Window start.
        at_ms: u64,
        /// Window end (exclusive).
        until_ms: u64,
        /// Extra delay in microseconds.
        extra_us: u64,
    },
    /// Deliver matching messages twice with `probability`.
    ReplayLink {
        /// Sender selector.
        from: Selector,
        /// Receiver selector.
        to: Selector,
        /// Window start.
        at_ms: u64,
        /// Window end (exclusive).
        until_ms: u64,
        /// Per-message replay probability in `[0, 1]`.
        probability: f64,
    },
    /// Corrupt matching messages with `probability` (detected garble on
    /// Basil's authenticated channels: the receiver discards them).
    CorruptLink {
        /// Sender selector.
        from: Selector,
        /// Receiver selector.
        to: Selector,
        /// Window start.
        at_ms: u64,
        /// Window end (exclusive).
        until_ms: u64,
        /// Per-message corruption probability in `[0, 1]`.
        probability: f64,
    },
    /// Run `replica` with a skewed clock for the whole run (build-time).
    ClockSkew {
        /// Target replica index.
        replica: u32,
        /// Skew in microseconds (positive = clock runs ahead).
        skew_us: i64,
    },
    /// Run `replica` with fewer cores for the whole run (build-time).
    SlowReplica {
        /// Target replica index.
        replica: u32,
        /// Core count (< the deployment's `replica_cores`).
        cores: u32,
    },
    /// Switch `replica` to `behavior` at `at_ms`; revert to correct at
    /// `revert_ms` if set.
    Misbehave {
        /// Target replica index.
        replica: u32,
        /// The Byzantine behaviour to switch to.
        behavior: ReplicaBehavior,
        /// Switch time.
        at_ms: u64,
        /// Revert-to-correct time (`None` = lies until the end).
        revert_ms: Option<u64>,
    },
}

impl FaultEvent {
    /// The time the fault starts acting.
    pub fn start_ms(&self) -> u64 {
        match self {
            FaultEvent::Crash { at_ms, .. }
            | FaultEvent::ProcessKill { at_ms, .. }
            | FaultEvent::PartitionReplica { at_ms, .. }
            | FaultEvent::DropLink { at_ms, .. }
            | FaultEvent::DelayLink { at_ms, .. }
            | FaultEvent::ReplayLink { at_ms, .. }
            | FaultEvent::CorruptLink { at_ms, .. }
            | FaultEvent::Misbehave { at_ms, .. } => *at_ms,
            FaultEvent::ClockSkew { .. } | FaultEvent::SlowReplica { .. } => 0,
        }
    }

    /// The time the fault stops acting, or `None` if it acts until the end
    /// of the run (an unhealed crash or misbehaviour, or a build-time
    /// property like skew / slowness).
    pub fn end_ms(&self) -> Option<u64> {
        match self {
            FaultEvent::Crash { restart_ms, .. } | FaultEvent::ProcessKill { restart_ms, .. } => {
                *restart_ms
            }
            FaultEvent::PartitionReplica { heal_ms, .. } => Some(*heal_ms),
            FaultEvent::DropLink { until_ms, .. }
            | FaultEvent::DelayLink { until_ms, .. }
            | FaultEvent::ReplayLink { until_ms, .. }
            | FaultEvent::CorruptLink { until_ms, .. } => Some(*until_ms),
            FaultEvent::Misbehave { revert_ms, .. } => *revert_ms,
            FaultEvent::ClockSkew { .. } | FaultEvent::SlowReplica { .. } => None,
        }
    }

    /// Replica indices this event charges against the *benign* budget.
    fn benign_targets(&self) -> Vec<u32> {
        match self {
            FaultEvent::Crash { replica, .. }
            | FaultEvent::ProcessKill { replica, .. }
            | FaultEvent::PartitionReplica { replica, .. }
            | FaultEvent::ClockSkew { replica, .. }
            | FaultEvent::SlowReplica { replica, .. } => vec![*replica],
            FaultEvent::DropLink { from, to, .. }
            | FaultEvent::DelayLink { from, to, .. }
            | FaultEvent::ReplayLink { from, to, .. } => [from, to]
                .into_iter()
                .filter_map(Selector::targeted_replica)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Replica indices this event charges against the *deceit* budget.
    fn deceit_targets(&self) -> Vec<u32> {
        match self {
            FaultEvent::Misbehave { replica, .. } => vec![*replica],
            FaultEvent::CorruptLink { from, to, .. } => [from, to]
                .into_iter()
                .filter_map(Selector::targeted_replica)
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Whether this event is a *network* fault with at least one broad
    /// selector (so it consumes no replica budget but still threatens
    /// liveness while its window is open).
    pub fn is_broad_network_fault(&self) -> bool {
        match self {
            FaultEvent::DropLink { from, to, .. }
            | FaultEvent::DelayLink { from, to, .. }
            | FaultEvent::ReplayLink { from, to, .. }
            | FaultEvent::CorruptLink { from, to, .. } => {
                from.targeted_replica().is_none() || to.targeted_replica().is_none()
            }
            _ => false,
        }
    }
}

/// The workload driven by every client (the YCSB-T variants the fault
/// experiments use; per-client generator seeds derive from the spec seed
/// exactly as `basil-bench` derives them).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// Uniform reads/writes over `keys` keys.
    RwUniform {
        /// Reads per transaction.
        reads: u32,
        /// Writes per transaction.
        writes: u32,
        /// Key-space size.
        keys: u64,
    },
    /// Zipfian reads/writes over `keys` keys with parameter `theta`.
    RwZipf {
        /// Reads per transaction.
        reads: u32,
        /// Writes per transaction.
        writes: u32,
        /// Key-space size.
        keys: u64,
        /// Zipf skew parameter.
        theta: f64,
    },
}

/// Pinned expected outcome of a corpus scenario: the regression test
/// replays the spec on both runtimes and compares against these.
#[derive(Clone, Debug, PartialEq)]
pub struct Expectation {
    /// Committed transactions across correct clients.
    pub committed: u64,
    /// Aborted attempts across correct clients.
    pub aborted_attempts: u64,
    /// Commits by Byzantine clients.
    pub byz_committed: u64,
    /// SHA-256 hex digest of the committed transaction-id set.
    pub digest: String,
}

/// A declarative fault scenario: deployment, schedule, budgeted fault
/// events, and (for corpus entries) the pinned expected outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (corpus file stem / display label).
    pub name: String,
    /// Simulation seed — drives *all* randomness of the run.
    pub seed: u64,
    /// Number of closed-loop clients.
    pub clients: u32,
    /// How many clients follow the Byzantine strategy.
    pub byz_clients: u32,
    /// The strategy Byzantine clients apply.
    pub byz_strategy: ClientStrategy,
    /// Fraction of a Byzantine client's transactions that are faulty.
    pub byz_fraction: f64,
    /// Fault-tolerance parameter: the deployment runs `5f + 1` replicas.
    pub f: u32,
    /// Reply batch size.
    pub batch_size: u32,
    /// Enables the experiment hook that relaxes ST2 justification checking
    /// (required by [`ClientStrategy::EquivForced`]).
    pub relax_st2: bool,
    /// Fault-free warmup before the measurement window.
    pub warmup_ms: u64,
    /// Total run length (including warmup and tail).
    pub duration_ms: u64,
    /// Quiet tail at the end of the run: the liveness check requires
    /// progress here, so every windowed fault must close before it.
    pub tail_ms: u64,
    /// Benign/deceitful replica allowances.
    pub budget: FaultBudget,
    /// The workload every client drives.
    pub workload: WorkloadSpec,
    /// The timed fault events.
    pub faults: Vec<FaultEvent>,
    /// Pinned expected outcome (corpus entries only).
    pub expect: Option<Expectation>,
}

impl ScenarioSpec {
    /// Number of replicas in the (single-shard) deployment: `5f + 1`.
    pub fn num_replicas(&self) -> u32 {
        5 * self.f + 1
    }

    /// The distinct replicas charged against the benign budget.
    pub fn benign_replicas(&self) -> BTreeSet<u32> {
        self.faults
            .iter()
            .flat_map(FaultEvent::benign_targets)
            .collect()
    }

    /// The distinct replicas charged against the deceit budget.
    pub fn deceit_replicas(&self) -> BTreeSet<u32> {
        self.faults
            .iter()
            .flat_map(FaultEvent::deceit_targets)
            .collect()
    }

    /// Start of the quiet tail.
    pub fn tail_start_ms(&self) -> u64 {
        self.duration_ms.saturating_sub(self.tail_ms)
    }

    /// Whether the liveness-under-budget check applies: the combined
    /// benign + deceitful replica set stays within `f` (Basilic's liveness
    /// bound), permanent behaviour faults are absent, and every windowed
    /// fault — including broad network faults — closes before the quiet
    /// tail, so correct clients must make progress there.
    pub fn liveness_checkable(&self) -> bool {
        if self.tail_ms == 0 {
            return false;
        }
        let mut faulty = self.benign_replicas();
        faulty.extend(self.deceit_replicas());
        if faulty.len() as u32 > self.f {
            return false;
        }
        let tail = self.tail_start_ms();
        self.faults.iter().all(|ev| match ev {
            // Build-time properties never clear, but a slow or skewed
            // replica within the budget does not block quorums.
            FaultEvent::ClockSkew { .. } | FaultEvent::SlowReplica { .. } => true,
            _ => ev.end_ms().is_some_and(|end| end <= tail),
        })
    }

    /// Validates the spec: structural sanity (counts, windows,
    /// probabilities, replica indices) and the fault budgets, including
    /// Basilic's safety bound `deceit ≤ f`.
    pub fn validate(&self) -> Result<(), SpecError> {
        let err = |msg: String| Err(SpecError(msg));
        if self.clients == 0 {
            return err("clients must be >= 1".into());
        }
        if self.byz_clients > self.clients {
            return err(format!(
                "byz_clients {} exceeds clients {}",
                self.byz_clients, self.clients
            ));
        }
        if !(0.0..=1.0).contains(&self.byz_fraction) {
            return err(format!("byz_fraction {} outside [0, 1]", self.byz_fraction));
        }
        if self.f == 0 {
            return err("f must be >= 1".into());
        }
        if self.batch_size == 0 {
            return err("batch_size must be >= 1".into());
        }
        if self.byz_strategy == ClientStrategy::EquivForced && !self.relax_st2 {
            return err("equiv-forced requires relax_st2 (the ST2 experiment hook)".into());
        }
        if self.warmup_ms + self.tail_ms >= self.duration_ms {
            return err(format!(
                "warmup {} + tail {} must leave room inside duration {}",
                self.warmup_ms, self.tail_ms, self.duration_ms
            ));
        }
        match self.workload {
            WorkloadSpec::RwUniform { keys, .. } => {
                if keys == 0 {
                    return err("workload keys must be >= 1".into());
                }
            }
            WorkloadSpec::RwZipf { keys, theta, .. } => {
                if keys == 0 {
                    return err("workload keys must be >= 1".into());
                }
                // The Zipf sampler requires strictly positive skew; theta
                // of 0 is what RwUniform is for.
                if theta <= 0.0 || theta >= 1.0 {
                    return err(format!("zipf theta {theta} outside (0, 1)"));
                }
            }
        }

        let n = self.num_replicas();
        for (i, ev) in self.faults.iter().enumerate() {
            let ctx = |msg: String| SpecError(format!("fault #{i}: {msg}"));
            for r in ev.benign_targets().into_iter().chain(ev.deceit_targets()) {
                if r >= n {
                    return Err(ctx(format!("replica {r} out of range (n = {n})")));
                }
            }
            if ev.start_ms() >= self.duration_ms {
                return Err(ctx(format!(
                    "starts at {} ms, past the run end {}",
                    ev.start_ms(),
                    self.duration_ms
                )));
            }
            if let Some(end) = ev.end_ms() {
                if end <= ev.start_ms() {
                    return Err(ctx(format!(
                        "window end {} not after start {}",
                        end,
                        ev.start_ms()
                    )));
                }
                if end > self.duration_ms {
                    return Err(ctx(format!(
                        "window end {} past the run end {}",
                        end, self.duration_ms
                    )));
                }
            }
            match ev {
                FaultEvent::DropLink { probability, .. }
                | FaultEvent::ReplayLink { probability, .. }
                | FaultEvent::CorruptLink { probability, .. }
                    if !(0.0..=1.0).contains(probability) =>
                {
                    return Err(ctx(format!("probability {probability} outside [0, 1]")));
                }
                // The timestamp window delta is 50 ms; skew beyond it would
                // reject every transaction of the replica, which is a crash
                // in disguise — model that as a crash.
                FaultEvent::ClockSkew { skew_us, .. } if skew_us.unsigned_abs() > 20_000 => {
                    return Err(ctx(format!("clock skew {skew_us} us exceeds 20 ms")));
                }
                FaultEvent::SlowReplica { cores: 0, .. } => {
                    return Err(ctx("slow replica needs >= 1 core".into()));
                }
                _ => {}
            }
        }

        let benign = self.benign_replicas();
        let deceit = self.deceit_replicas();
        if benign.len() as u32 > self.budget.crash {
            return err(format!(
                "benign faults touch {} replicas {:?}, budget allows {}",
                benign.len(),
                benign,
                self.budget.crash
            ));
        }
        if deceit.len() as u32 > self.budget.deceit {
            return err(format!(
                "deceitful faults touch {} replicas {:?}, budget allows {}",
                deceit.len(),
                deceit,
                self.budget.deceit
            ));
        }
        if self.budget.deceit > self.f {
            return err(format!(
                "deceit budget {} exceeds f = {} (safety bound)",
                self.budget.deceit, self.f
            ));
        }
        Ok(())
    }
}

/// A spec-validation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid scenario: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
pub(crate) use tests::base_spec;

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn base_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "base".into(),
            seed: 7,
            clients: 4,
            byz_clients: 1,
            byz_strategy: ClientStrategy::EquivReal,
            byz_fraction: 1.0,
            f: 1,
            batch_size: 16,
            relax_st2: false,
            warmup_ms: 30,
            duration_ms: 200,
            tail_ms: 60,
            budget: FaultBudget {
                crash: 1,
                deceit: 1,
            },
            workload: WorkloadSpec::RwZipf {
                reads: 2,
                writes: 2,
                keys: 1_000,
                theta: 0.9,
            },
            faults: vec![
                FaultEvent::Crash {
                    replica: 4,
                    at_ms: 50,
                    restart_ms: Some(90),
                    recovery: RecoveryMode::Warm,
                },
                FaultEvent::DropLink {
                    from: Selector::Clients,
                    to: Selector::Replica(4),
                    at_ms: 40,
                    until_ms: 120,
                    probability: 0.5,
                },
            ],
            expect: None,
        }
    }

    #[test]
    fn base_spec_is_valid_and_liveness_checkable() {
        let spec = base_spec();
        spec.validate().expect("valid");
        assert_eq!(spec.benign_replicas(), BTreeSet::from([4]));
        assert!(spec.deceit_replicas().is_empty());
        assert!(spec.liveness_checkable());
    }

    #[test]
    fn budget_violations_are_rejected() {
        let mut spec = base_spec();
        spec.faults.push(FaultEvent::PartitionReplica {
            replica: 2,
            at_ms: 60,
            heal_ms: 100,
        });
        let e = spec.validate().unwrap_err();
        assert!(e.0.contains("benign"), "{e}");

        let mut spec = base_spec();
        spec.faults.push(FaultEvent::Misbehave {
            replica: 1,
            behavior: ReplicaBehavior::WithholdVotes,
            at_ms: 50,
            revert_ms: Some(100),
        });
        spec.faults.push(FaultEvent::CorruptLink {
            from: Selector::Replica(2),
            to: Selector::Any,
            at_ms: 50,
            until_ms: 100,
            probability: 0.5,
        });
        let e = spec.validate().unwrap_err();
        assert!(e.0.contains("deceitful"), "{e}");

        let mut spec = base_spec();
        spec.budget.deceit = 2; // > f = 1
        let e = spec.validate().unwrap_err();
        assert!(e.0.contains("safety"), "{e}");
    }

    #[test]
    fn window_and_range_violations_are_rejected() {
        let mut spec = base_spec();
        spec.faults[0] = FaultEvent::Crash {
            replica: 6, // n = 6, max index 5
            at_ms: 50,
            restart_ms: None,
            recovery: RecoveryMode::Warm,
        };
        assert!(spec.validate().is_err());

        let mut spec = base_spec();
        spec.faults[1] = FaultEvent::DropLink {
            from: Selector::Any,
            to: Selector::Any,
            at_ms: 120,
            until_ms: 100,
            probability: 0.5,
        };
        assert!(spec.validate().is_err());

        let mut spec = base_spec();
        spec.warmup_ms = 150;
        spec.tail_ms = 60;
        assert!(spec.validate().is_err(), "warmup+tail >= duration");
    }

    #[test]
    fn liveness_checkability_rules() {
        // Unhealed crash: not checkable.
        let mut spec = base_spec();
        spec.faults[0] = FaultEvent::Crash {
            replica: 4,
            at_ms: 50,
            restart_ms: None,
            recovery: RecoveryMode::Amnesia,
        };
        assert!(!spec.liveness_checkable());

        // Window reaching into the tail: not checkable.
        let mut spec = base_spec();
        spec.faults[1] = FaultEvent::DropLink {
            from: Selector::Clients,
            to: Selector::Replica(4),
            at_ms: 40,
            until_ms: 190, // tail starts at 140
            probability: 0.5,
        };
        assert!(!spec.liveness_checkable());

        // Benign + deceitful on distinct replicas exceeds f = 1.
        let mut spec = base_spec();
        spec.faults.push(FaultEvent::Misbehave {
            replica: 1,
            behavior: ReplicaBehavior::AlwaysVoteAbort,
            at_ms: 50,
            revert_ms: Some(100),
        });
        spec.validate().expect("within budgets");
        assert!(!spec.liveness_checkable());

        // Build-time slowness within the budget stays checkable.
        let mut spec = base_spec();
        spec.faults = vec![FaultEvent::SlowReplica {
            replica: 3,
            cores: 1,
        }];
        assert!(spec.liveness_checkable());
    }

    #[test]
    fn process_kill_is_a_benign_windowed_fault() {
        let mut spec = base_spec();
        spec.faults = vec![FaultEvent::ProcessKill {
            replica: 3,
            at_ms: 50,
            restart_ms: Some(100),
        }];
        spec.validate().expect("valid");
        assert_eq!(spec.benign_replicas(), BTreeSet::from([3]));
        assert!(spec.deceit_replicas().is_empty());
        assert!(spec.liveness_checkable(), "restart closes before the tail");

        // An unrestarted kill leaves the replica down for good: liveness
        // stops being checkable, exactly like an unhealed crash.
        spec.faults = vec![FaultEvent::ProcessKill {
            replica: 3,
            at_ms: 50,
            restart_ms: None,
        }];
        spec.validate().expect("still valid");
        assert!(!spec.liveness_checkable());

        // Range checking applies to the kill target too.
        spec.faults = vec![FaultEvent::ProcessKill {
            replica: 6,
            at_ms: 50,
            restart_ms: None,
        }];
        assert!(spec.validate().is_err());
    }

    #[test]
    fn broad_network_faults_consume_no_budget() {
        let mut spec = base_spec();
        spec.faults = vec![FaultEvent::DropLink {
            from: Selector::Any,
            to: Selector::Any,
            at_ms: 40,
            until_ms: 100,
            probability: 0.2,
        }];
        spec.validate().expect("valid");
        assert!(spec.benign_replicas().is_empty());
        assert!(spec.faults[0].is_broad_network_fault());
        assert!(spec.liveness_checkable(), "window closes before the tail");
    }
}
