//! Schedule-fuzzing driver.
//!
//! Generates seed-derived fault schedules, runs each against a Basil
//! deployment on the serial runtime (periodically cross-checking the
//! parallel runtime for bit-for-bit agreement), checks the
//! serializability + decision-agreement audit and the
//! liveness-under-budget property, and delta-debugs any failure down to a
//! minimal spec written to the failure directory.
//!
//! Every `--baseline-every`-th schedule is additionally replayed (with
//! Byzantine clients stripped) against one of the baseline systems,
//! cycling through Tapir / TxHotstuff / TxBftSmart, and checked for
//! serializability-audit failures.
//!
//! ```text
//! fuzz_schedules [--count N] [--seed-base S] [--budget-secs T]
//!                [--cross-check-every K] [--baseline-every B] [--out DIR]
//! ```
//!
//! Exit status: `0` all schedules passed; `1` the wall-clock budget ended
//! the campaign early (still clean); `2` at least one failure was found
//! (minimal repros in `--out`, default `target/fuzz-failures/`).

use basil_scenario::fuzz::{fuzz, FuzzOptions};
use std::path::PathBuf;

struct Args {
    opts: FuzzOptions,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut opts = FuzzOptions::default();
    let mut out = PathBuf::from("target/fuzz-failures");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--count" => {
                opts.count = value("--count")?
                    .parse()
                    .map_err(|e| format!("--count: {e}"))?
            }
            "--seed-base" => {
                opts.seed_base = value("--seed-base")?
                    .parse()
                    .map_err(|e| format!("--seed-base: {e}"))?
            }
            "--budget-secs" => {
                let secs: u64 = value("--budget-secs")?
                    .parse()
                    .map_err(|e| format!("--budget-secs: {e}"))?;
                opts.wall_budget = Some(std::time::Duration::from_secs(secs));
            }
            "--cross-check-every" => {
                opts.cross_check_every = value("--cross-check-every")?
                    .parse()
                    .map_err(|e| format!("--cross-check-every: {e}"))?
            }
            "--baseline-every" => {
                opts.baseline_every = value("--baseline-every")?
                    .parse()
                    .map_err(|e| format!("--baseline-every: {e}"))?
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz_schedules [--count N] [--seed-base S] [--budget-secs T] \
                     [--cross-check-every K] [--baseline-every B] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args { opts, out })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz_schedules: {e}");
            std::process::exit(2);
        }
    };
    let started = std::time::Instant::now();
    eprintln!(
        "[fuzz] {} schedules from seed base {:#x} (cross-check every {}, budget {:?})",
        args.opts.count, args.opts.seed_base, args.opts.cross_check_every, args.opts.wall_budget
    );
    let summary = fuzz(&args.opts, |run, failures| {
        if run % 100 == 0 {
            eprintln!(
                "[fuzz] {run} schedules, {failures} failures, {:.1}s elapsed",
                started.elapsed().as_secs_f64()
            );
        }
    });

    eprintln!(
        "[fuzz] done: {} schedules ({} cross-checked, {} baseline-replayed) in {:.1}s, {} failures",
        summary.schedules_run,
        summary.cross_checked,
        summary.baseline_checked,
        started.elapsed().as_secs_f64(),
        summary.failures.len()
    );

    if !summary.failures.is_empty() {
        if let Err(e) = std::fs::create_dir_all(&args.out) {
            eprintln!("[fuzz] cannot create {}: {e}", args.out.display());
        }
        for failure in &summary.failures {
            let system = match failure.baseline {
                Some(kind) => format!("{kind:?}"),
                None => "basil".into(),
            };
            let path = args
                .out
                .join(format!("{}-{}-{}.ron", failure.kind, system, failure.seed));
            eprintln!(
                "[fuzz] seed {} failed ({} on {system}): {} -> {} events after {} shrink runs; repro: {}",
                failure.seed,
                failure.kind,
                failure.original.faults.len(),
                failure.shrunk.faults.len(),
                failure.shrink_runs,
                path.display()
            );
            if let Err(e) = std::fs::write(&path, failure.corpus_entry()) {
                eprintln!("[fuzz] cannot write {}: {e}", path.display());
            }
        }
        std::process::exit(2);
    }
    if summary.budget_exhausted {
        eprintln!(
            "[fuzz] budget exhausted after {} of {} schedules (no failures)",
            summary.schedules_run, args.opts.count
        );
        std::process::exit(1);
    }
}
