//! A hand-rolled RON (Rusty Object Notation) codec for [`ScenarioSpec`].
//!
//! The workspace builds offline with no serde, so — like the snapshot JSON
//! codec in `basil-bench` — this module parses exactly the subset of RON
//! the scenario grammar uses: named structs with named fields
//! (`Name(field: value, ...)`), unit and tuple enum variants
//! (`Clients`, `Replica(3)`, `Some(x)`, `None`), lists, strings, booleans,
//! and numbers. `encode` emits the canonical form that `decode` reads back
//! (round-trip is tested), which is the format of the committed corpus
//! under `tests/corpus/`.

use crate::spec::{
    Expectation, FaultBudget, FaultEvent, RecoveryMode, ScenarioSpec, Selector, SpecError,
    WorkloadSpec,
};
use basil_core::{ClientStrategy, ReplicaBehavior};

/// A parsed RON value.
#[derive(Clone, Debug, PartialEq)]
enum Val {
    /// Raw number token (parsed per-field to keep u64 precision).
    Num(String),
    Str(String),
    Bool(bool),
    /// Bare identifier: a unit enum variant (`Clients`, `None`).
    Unit(String),
    /// `Name(...)` with named and/or positional arguments. `name` is empty
    /// for an anonymous struct `(field: value, ...)`.
    Call {
        name: String,
        named: Vec<(String, Val)>,
        positional: Vec<Val>,
    },
    List(Vec<Val>),
}

// ---------------------------------------------------------------- lexer --

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Colon,
    Comma,
}

fn lex(src: &str) -> Result<Vec<Tok>, SpecError> {
    let mut toks = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                chars.next();
            }
            '/' => {
                // Line comment `// ...`.
                chars.next();
                if chars.next() != Some('/') {
                    return Err(SpecError("stray '/' (expected //)".into()));
                }
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                toks.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                toks.push(Tok::RParen);
            }
            '[' => {
                chars.next();
                toks.push(Tok::LBracket);
            }
            ']' => {
                chars.next();
                toks.push(Tok::RBracket);
            }
            ':' => {
                chars.next();
                toks.push(Tok::Colon);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some('n') => s.push('\n'),
                            other => {
                                return Err(SpecError(format!("bad escape {other:?} in string")))
                            }
                        },
                        Some(c) => s.push(c),
                        None => return Err(SpecError("unterminated string".into())),
                    }
                }
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E' | '_') {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Num(s.replace('_', "")));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            other => return Err(SpecError(format!("unexpected character {other:?}"))),
        }
    }
    Ok(toks)
}

// --------------------------------------------------------------- parser --

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, SpecError> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| SpecError("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> Result<(), SpecError> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(SpecError(format!("expected {want:?}, got {got:?}")))
        }
    }

    fn value(&mut self) -> Result<Val, SpecError> {
        match self.next()? {
            Tok::Str(s) => Ok(Val::Str(s)),
            Tok::Num(s) => Ok(Val::Num(s)),
            Tok::LBracket => {
                let mut items = Vec::new();
                loop {
                    if self.peek() == Some(&Tok::RBracket) {
                        self.pos += 1;
                        break;
                    }
                    items.push(self.value()?);
                    match self.next()? {
                        Tok::Comma => {}
                        Tok::RBracket => break,
                        t => return Err(SpecError(format!("expected , or ] in list, got {t:?}"))),
                    }
                }
                Ok(Val::List(items))
            }
            Tok::LParen => self.call(String::new()),
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(Val::Bool(true)),
                "false" => Ok(Val::Bool(false)),
                _ => {
                    if self.peek() == Some(&Tok::LParen) {
                        self.pos += 1;
                        self.call(name)
                    } else {
                        Ok(Val::Unit(name))
                    }
                }
            },
            t => Err(SpecError(format!("unexpected token {t:?}"))),
        }
    }

    /// Parses the arguments of `name(...)` after the opening paren.
    fn call(&mut self, name: String) -> Result<Val, SpecError> {
        let mut named = Vec::new();
        let mut positional = Vec::new();
        loop {
            if self.peek() == Some(&Tok::RParen) {
                self.pos += 1;
                break;
            }
            // `ident:` introduces a named field; anything else is positional.
            let is_named = matches!(self.peek(), Some(Tok::Ident(_)))
                && self.toks.get(self.pos + 1) == Some(&Tok::Colon);
            if is_named {
                let Tok::Ident(field) = self.next()? else {
                    unreachable!()
                };
                self.expect(&Tok::Colon)?;
                named.push((field, self.value()?));
            } else {
                positional.push(self.value()?);
            }
            match self.next()? {
                Tok::Comma => {}
                Tok::RParen => break,
                t => return Err(SpecError(format!("expected , or ) in call, got {t:?}"))),
            }
        }
        Ok(Val::Call {
            name,
            named,
            positional,
        })
    }
}

// -------------------------------------------------------------- decoder --

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

impl Val {
    fn as_u64(&self, field: &str) -> Result<u64, SpecError> {
        match self {
            Val::Num(s) => s.parse().map_err(|_| err(format!("{field}: bad u64 {s}"))),
            _ => Err(err(format!("{field}: expected a number"))),
        }
    }

    fn as_u32(&self, field: &str) -> Result<u32, SpecError> {
        match self {
            Val::Num(s) => s.parse().map_err(|_| err(format!("{field}: bad u32 {s}"))),
            _ => Err(err(format!("{field}: expected a number"))),
        }
    }

    fn as_i64(&self, field: &str) -> Result<i64, SpecError> {
        match self {
            Val::Num(s) => s.parse().map_err(|_| err(format!("{field}: bad i64 {s}"))),
            _ => Err(err(format!("{field}: expected a number"))),
        }
    }

    fn as_f64(&self, field: &str) -> Result<f64, SpecError> {
        match self {
            Val::Num(s) => s.parse().map_err(|_| err(format!("{field}: bad f64 {s}"))),
            _ => Err(err(format!("{field}: expected a number"))),
        }
    }

    fn as_bool(&self, field: &str) -> Result<bool, SpecError> {
        match self {
            Val::Bool(b) => Ok(*b),
            _ => Err(err(format!("{field}: expected true/false"))),
        }
    }

    fn as_str(&self, field: &str) -> Result<&str, SpecError> {
        match self {
            Val::Str(s) => Ok(s),
            _ => Err(err(format!("{field}: expected a string"))),
        }
    }

    fn as_opt_u64(&self, field: &str) -> Result<Option<u64>, SpecError> {
        match self {
            Val::Unit(n) if n == "None" => Ok(None),
            Val::Call {
                name, positional, ..
            } if name == "Some" && positional.len() == 1 => Ok(Some(positional[0].as_u64(field)?)),
            _ => Err(err(format!("{field}: expected Some(n) or None"))),
        }
    }

    fn field<'a>(&'a self, name: &str) -> Result<&'a Val, SpecError> {
        match self {
            Val::Call { named, .. } => named
                .iter()
                .find(|(f, _)| f == name)
                .map(|(_, v)| v)
                .ok_or_else(|| err(format!("missing field `{name}`"))),
            _ => Err(err(format!("expected a struct with field `{name}`"))),
        }
    }

    fn opt_field<'a>(&'a self, name: &str) -> Option<&'a Val> {
        match self {
            Val::Call { named, .. } => named.iter().find(|(f, _)| f == name).map(|(_, v)| v),
            _ => None,
        }
    }

    fn call_name(&self) -> Result<&str, SpecError> {
        match self {
            Val::Call { name, .. } => Ok(name),
            Val::Unit(name) => Ok(name),
            _ => Err(err("expected a named value")),
        }
    }
}

fn decode_selector(v: &Val, field: &str) -> Result<Selector, SpecError> {
    match v {
        Val::Unit(n) if n == "Any" => Ok(Selector::Any),
        Val::Unit(n) if n == "Clients" => Ok(Selector::Clients),
        Val::Unit(n) if n == "Replicas" => Ok(Selector::Replicas),
        Val::Call {
            name, positional, ..
        } if name == "Replica" && positional.len() == 1 => {
            Ok(Selector::Replica(positional[0].as_u32(field)?))
        }
        _ => Err(err(format!(
            "{field}: expected Any | Clients | Replicas | Replica(i)"
        ))),
    }
}

fn decode_link_args(v: &Val) -> Result<(Selector, Selector, u64, u64), SpecError> {
    Ok((
        decode_selector(v.field("from")?, "from")?,
        decode_selector(v.field("to")?, "to")?,
        v.field("at_ms")?.as_u64("at_ms")?,
        v.field("until_ms")?.as_u64("until_ms")?,
    ))
}

fn decode_recovery(v: &Val) -> Result<RecoveryMode, SpecError> {
    match v {
        Val::Unit(n) if n == "Warm" => Ok(RecoveryMode::Warm),
        Val::Unit(n) if n == "Amnesia" => Ok(RecoveryMode::Amnesia),
        _ => Err(err("recovery: expected Warm | Amnesia")),
    }
}

fn decode_fault(v: &Val) -> Result<FaultEvent, SpecError> {
    match v.call_name()? {
        "Crash" => Ok(FaultEvent::Crash {
            replica: v.field("replica")?.as_u32("replica")?,
            at_ms: v.field("at_ms")?.as_u64("at_ms")?,
            restart_ms: v.field("restart_ms")?.as_opt_u64("restart_ms")?,
            // Absent in corpus entries written before the durability layer:
            // those crashes were warm restarts by construction.
            recovery: v
                .opt_field("recovery")
                .map(decode_recovery)
                .transpose()?
                .unwrap_or_default(),
        }),
        "ProcessKill" => Ok(FaultEvent::ProcessKill {
            replica: v.field("replica")?.as_u32("replica")?,
            at_ms: v.field("at_ms")?.as_u64("at_ms")?,
            restart_ms: v.field("restart_ms")?.as_opt_u64("restart_ms")?,
        }),
        "PartitionReplica" => Ok(FaultEvent::PartitionReplica {
            replica: v.field("replica")?.as_u32("replica")?,
            at_ms: v.field("at_ms")?.as_u64("at_ms")?,
            heal_ms: v.field("heal_ms")?.as_u64("heal_ms")?,
        }),
        "DropLink" => {
            let (from, to, at_ms, until_ms) = decode_link_args(v)?;
            Ok(FaultEvent::DropLink {
                from,
                to,
                at_ms,
                until_ms,
                probability: v.field("probability")?.as_f64("probability")?,
            })
        }
        "DelayLink" => {
            let (from, to, at_ms, until_ms) = decode_link_args(v)?;
            Ok(FaultEvent::DelayLink {
                from,
                to,
                at_ms,
                until_ms,
                extra_us: v.field("extra_us")?.as_u64("extra_us")?,
            })
        }
        "ReplayLink" => {
            let (from, to, at_ms, until_ms) = decode_link_args(v)?;
            Ok(FaultEvent::ReplayLink {
                from,
                to,
                at_ms,
                until_ms,
                probability: v.field("probability")?.as_f64("probability")?,
            })
        }
        "CorruptLink" => {
            let (from, to, at_ms, until_ms) = decode_link_args(v)?;
            Ok(FaultEvent::CorruptLink {
                from,
                to,
                at_ms,
                until_ms,
                probability: v.field("probability")?.as_f64("probability")?,
            })
        }
        "ClockSkew" => Ok(FaultEvent::ClockSkew {
            replica: v.field("replica")?.as_u32("replica")?,
            skew_us: v.field("skew_us")?.as_i64("skew_us")?,
        }),
        "SlowReplica" => Ok(FaultEvent::SlowReplica {
            replica: v.field("replica")?.as_u32("replica")?,
            cores: v.field("cores")?.as_u32("cores")?,
        }),
        "Misbehave" => Ok(FaultEvent::Misbehave {
            replica: v.field("replica")?.as_u32("replica")?,
            behavior: v
                .field("behavior")?
                .as_str("behavior")?
                .parse::<ReplicaBehavior>()
                .map_err(SpecError)?,
            at_ms: v.field("at_ms")?.as_u64("at_ms")?,
            revert_ms: v.field("revert_ms")?.as_opt_u64("revert_ms")?,
        }),
        other => Err(err(format!("unknown fault kind `{other}`"))),
    }
}

fn decode_workload(v: &Val) -> Result<WorkloadSpec, SpecError> {
    match v.call_name()? {
        "RwUniform" => Ok(WorkloadSpec::RwUniform {
            reads: v.field("reads")?.as_u32("reads")?,
            writes: v.field("writes")?.as_u32("writes")?,
            keys: v.field("keys")?.as_u64("keys")?,
        }),
        "RwZipf" => Ok(WorkloadSpec::RwZipf {
            reads: v.field("reads")?.as_u32("reads")?,
            writes: v.field("writes")?.as_u32("writes")?,
            keys: v.field("keys")?.as_u64("keys")?,
            theta: v.field("theta")?.as_f64("theta")?,
        }),
        other => Err(err(format!("unknown workload `{other}`"))),
    }
}

/// Parses a [`ScenarioSpec`] from its RON form. Parsing does *not*
/// validate the spec — call [`ScenarioSpec::validate`] on the result.
pub fn decode(src: &str) -> Result<ScenarioSpec, SpecError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let root = p.value()?;
    if p.pos != p.toks.len() {
        return Err(err("trailing input after the spec"));
    }
    if root.call_name()? != "ScenarioSpec" {
        return Err(err("expected a ScenarioSpec(...) document"));
    }

    let faults = match root.field("faults")? {
        Val::List(items) => items
            .iter()
            .map(decode_fault)
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(err("faults: expected a list")),
    };
    let expect = match root.opt_field("expect") {
        None => None,
        Some(Val::Unit(n)) if n == "None" => None,
        Some(Val::Call {
            name, positional, ..
        }) if name == "Some" && positional.len() == 1 => {
            let e = &positional[0];
            Some(Expectation {
                committed: e.field("committed")?.as_u64("committed")?,
                aborted_attempts: e.field("aborted_attempts")?.as_u64("aborted_attempts")?,
                byz_committed: e.field("byz_committed")?.as_u64("byz_committed")?,
                digest: e.field("digest")?.as_str("digest")?.to_string(),
            })
        }
        Some(_) => return Err(err("expect: expected Some((...)) or None")),
    };

    Ok(ScenarioSpec {
        name: root.field("name")?.as_str("name")?.to_string(),
        seed: root.field("seed")?.as_u64("seed")?,
        clients: root.field("clients")?.as_u32("clients")?,
        byz_clients: root.field("byz_clients")?.as_u32("byz_clients")?,
        byz_strategy: root
            .field("byz_strategy")?
            .as_str("byz_strategy")?
            .parse::<ClientStrategy>()
            .map_err(SpecError)?,
        byz_fraction: root.field("byz_fraction")?.as_f64("byz_fraction")?,
        f: root.field("f")?.as_u32("f")?,
        batch_size: root.field("batch_size")?.as_u32("batch_size")?,
        relax_st2: root.field("relax_st2")?.as_bool("relax_st2")?,
        warmup_ms: root.field("warmup_ms")?.as_u64("warmup_ms")?,
        duration_ms: root.field("duration_ms")?.as_u64("duration_ms")?,
        tail_ms: root.field("tail_ms")?.as_u64("tail_ms")?,
        budget: {
            let b = root.field("budget")?;
            FaultBudget {
                crash: b.field("crash")?.as_u32("crash")?,
                deceit: b.field("deceit")?.as_u32("deceit")?,
            }
        },
        workload: decode_workload(root.field("workload")?)?,
        faults,
        expect,
    })
}

// -------------------------------------------------------------- encoder --

fn fmt_sel(s: Selector) -> String {
    match s {
        Selector::Any => "Any".into(),
        Selector::Clients => "Clients".into(),
        Selector::Replicas => "Replicas".into(),
        Selector::Replica(i) => format!("Replica({i})"),
    }
}

fn fmt_opt(v: Option<u64>) -> String {
    match v {
        Some(n) => format!("Some({n})"),
        None => "None".into(),
    }
}

fn fmt_fault(ev: &FaultEvent) -> String {
    match ev {
        FaultEvent::Crash {
            replica,
            at_ms,
            restart_ms,
            recovery,
        } => format!(
            "Crash(replica: {replica}, at_ms: {at_ms}, restart_ms: {}, recovery: {recovery})",
            fmt_opt(*restart_ms)
        ),
        FaultEvent::ProcessKill {
            replica,
            at_ms,
            restart_ms,
        } => format!(
            "ProcessKill(replica: {replica}, at_ms: {at_ms}, restart_ms: {})",
            fmt_opt(*restart_ms)
        ),
        FaultEvent::PartitionReplica {
            replica,
            at_ms,
            heal_ms,
        } => format!("PartitionReplica(replica: {replica}, at_ms: {at_ms}, heal_ms: {heal_ms})"),
        FaultEvent::DropLink {
            from,
            to,
            at_ms,
            until_ms,
            probability,
        } => format!(
            "DropLink(from: {}, to: {}, at_ms: {at_ms}, until_ms: {until_ms}, probability: {probability:?})",
            fmt_sel(*from),
            fmt_sel(*to)
        ),
        FaultEvent::DelayLink {
            from,
            to,
            at_ms,
            until_ms,
            extra_us,
        } => format!(
            "DelayLink(from: {}, to: {}, at_ms: {at_ms}, until_ms: {until_ms}, extra_us: {extra_us})",
            fmt_sel(*from),
            fmt_sel(*to)
        ),
        FaultEvent::ReplayLink {
            from,
            to,
            at_ms,
            until_ms,
            probability,
        } => format!(
            "ReplayLink(from: {}, to: {}, at_ms: {at_ms}, until_ms: {until_ms}, probability: {probability:?})",
            fmt_sel(*from),
            fmt_sel(*to)
        ),
        FaultEvent::CorruptLink {
            from,
            to,
            at_ms,
            until_ms,
            probability,
        } => format!(
            "CorruptLink(from: {}, to: {}, at_ms: {at_ms}, until_ms: {until_ms}, probability: {probability:?})",
            fmt_sel(*from),
            fmt_sel(*to)
        ),
        FaultEvent::ClockSkew { replica, skew_us } => {
            format!("ClockSkew(replica: {replica}, skew_us: {skew_us})")
        }
        FaultEvent::SlowReplica { replica, cores } => {
            format!("SlowReplica(replica: {replica}, cores: {cores})")
        }
        FaultEvent::Misbehave {
            replica,
            behavior,
            at_ms,
            revert_ms,
        } => format!(
            "Misbehave(replica: {replica}, behavior: \"{behavior}\", at_ms: {at_ms}, revert_ms: {})",
            fmt_opt(*revert_ms)
        ),
    }
}

/// Serializes a [`ScenarioSpec`] to its canonical RON form (the corpus
/// file format; [`decode`] reads it back bit-for-bit).
pub fn encode(spec: &ScenarioSpec) -> String {
    let mut out = String::new();
    out.push_str("ScenarioSpec(\n");
    out.push_str(&format!("    name: {:?},\n", spec.name));
    out.push_str(&format!("    seed: {},\n", spec.seed));
    out.push_str(&format!("    clients: {},\n", spec.clients));
    out.push_str(&format!("    byz_clients: {},\n", spec.byz_clients));
    out.push_str(&format!("    byz_strategy: \"{}\",\n", spec.byz_strategy));
    out.push_str(&format!("    byz_fraction: {:?},\n", spec.byz_fraction));
    out.push_str(&format!("    f: {},\n", spec.f));
    out.push_str(&format!("    batch_size: {},\n", spec.batch_size));
    out.push_str(&format!("    relax_st2: {},\n", spec.relax_st2));
    out.push_str(&format!("    warmup_ms: {},\n", spec.warmup_ms));
    out.push_str(&format!("    duration_ms: {},\n", spec.duration_ms));
    out.push_str(&format!("    tail_ms: {},\n", spec.tail_ms));
    out.push_str(&format!(
        "    budget: (crash: {}, deceit: {}),\n",
        spec.budget.crash, spec.budget.deceit
    ));
    match spec.workload {
        WorkloadSpec::RwUniform {
            reads,
            writes,
            keys,
        } => out.push_str(&format!(
            "    workload: RwUniform(reads: {reads}, writes: {writes}, keys: {keys}),\n"
        )),
        WorkloadSpec::RwZipf {
            reads,
            writes,
            keys,
            theta,
        } => out.push_str(&format!(
            "    workload: RwZipf(reads: {reads}, writes: {writes}, keys: {keys}, theta: {theta:?}),\n"
        )),
    }
    if spec.faults.is_empty() {
        out.push_str("    faults: [],\n");
    } else {
        out.push_str("    faults: [\n");
        for ev in &spec.faults {
            out.push_str(&format!("        {},\n", fmt_fault(ev)));
        }
        out.push_str("    ],\n");
    }
    match &spec.expect {
        None => out.push_str("    expect: None,\n"),
        Some(e) => {
            out.push_str("    expect: Some((\n");
            out.push_str(&format!("        committed: {},\n", e.committed));
            out.push_str(&format!(
                "        aborted_attempts: {},\n",
                e.aborted_attempts
            ));
            out.push_str(&format!("        byz_committed: {},\n", e.byz_committed));
            out.push_str(&format!("        digest: {:?},\n", e.digest));
            out.push_str("    )),\n");
        }
    }
    out.push_str(")\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FaultBudget;

    fn sample() -> ScenarioSpec {
        ScenarioSpec {
            name: "round-trip".into(),
            seed: u64::MAX - 3, // exceeds f64 precision: must survive
            clients: 6,
            byz_clients: 2,
            byz_strategy: ClientStrategy::StallLate,
            byz_fraction: 0.75,
            f: 1,
            batch_size: 8,
            relax_st2: false,
            warmup_ms: 40,
            duration_ms: 250,
            tail_ms: 70,
            budget: FaultBudget {
                crash: 1,
                deceit: 1,
            },
            workload: WorkloadSpec::RwZipf {
                reads: 2,
                writes: 2,
                keys: 5_000,
                theta: 0.9,
            },
            faults: vec![
                FaultEvent::Crash {
                    replica: 4,
                    at_ms: 60,
                    restart_ms: Some(120),
                    recovery: RecoveryMode::Amnesia,
                },
                FaultEvent::PartitionReplica {
                    replica: 4,
                    at_ms: 130,
                    heal_ms: 170,
                },
                FaultEvent::DropLink {
                    from: Selector::Clients,
                    to: Selector::Replica(4),
                    at_ms: 50,
                    until_ms: 100,
                    probability: 0.25,
                },
                FaultEvent::DelayLink {
                    from: Selector::Any,
                    to: Selector::Replicas,
                    at_ms: 50,
                    until_ms: 110,
                    extra_us: 300,
                },
                FaultEvent::ReplayLink {
                    from: Selector::Replicas,
                    to: Selector::Clients,
                    at_ms: 60,
                    until_ms: 90,
                    probability: 0.1,
                },
                FaultEvent::CorruptLink {
                    from: Selector::Replica(2),
                    to: Selector::Any,
                    at_ms: 70,
                    until_ms: 120,
                    probability: 0.05,
                },
                FaultEvent::ClockSkew {
                    replica: 1,
                    skew_us: -1_500,
                },
                FaultEvent::SlowReplica {
                    replica: 3,
                    cores: 1,
                },
                FaultEvent::Misbehave {
                    replica: 2,
                    behavior: ReplicaBehavior::WithholdVotes,
                    at_ms: 80,
                    revert_ms: None,
                },
            ],
            expect: Some(Expectation {
                committed: 123,
                aborted_attempts: 4,
                byz_committed: 9,
                digest: "abcd".into(),
            }),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let spec = sample();
        let text = encode(&spec);
        let back = decode(&text).expect("decodes");
        assert_eq!(back, spec);
        // Canonical: a second encode is byte-identical.
        assert_eq!(encode(&back), text);
    }

    #[test]
    fn comments_and_whitespace_are_tolerated() {
        let spec = ScenarioSpec {
            expect: None,
            faults: vec![],
            ..sample()
        };
        let mut text = String::from("// a corpus file\n");
        text.push_str(&encode(&spec));
        let back = decode(&text).expect("decodes with comment");
        assert_eq!(back, spec);
    }

    #[test]
    fn decode_errors_are_reported() {
        assert!(decode("NotASpec(name: \"x\")").is_err());
        assert!(decode("ScenarioSpec(name: \"x\"").is_err(), "unterminated");
        let mut broken = encode(&sample());
        broken = broken.replace("byz_strategy: \"stall-late\"", "byz_strategy: \"nope\"");
        assert!(decode(&broken).is_err(), "unknown strategy rejected");
    }

    #[test]
    fn missing_recovery_field_defaults_to_warm() {
        // Corpus entries written before the durability layer lack the
        // `recovery` field; they decode as warm restarts.
        let text = encode(&sample()).replace(", recovery: Amnesia", "");
        let back = decode(&text).expect("decodes without recovery");
        match &back.faults[0] {
            FaultEvent::Crash { recovery, .. } => assert_eq!(*recovery, RecoveryMode::Warm),
            other => panic!("expected a crash, got {other:?}"),
        }
        assert!(decode(&encode(&sample()).replace("Amnesia", "Hot")).is_err());
    }

    #[test]
    fn missing_expect_field_defaults_to_none() {
        let spec = ScenarioSpec {
            expect: None,
            ..sample()
        };
        let text = encode(&spec).replace("    expect: None,\n", "");
        assert_eq!(decode(&text).expect("decodes"), spec);
    }
}
