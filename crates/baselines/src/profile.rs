//! Baseline system profiles and configuration.

use basil_common::{Duration, Key, ShardId};
use basil_crypto::CostModel;

/// Which baseline system a deployment runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// TAPIR-style non-Byzantine store: `2f + 1` replicas, no signatures,
    /// prepares executed directly by replicas.
    Tapir,
    /// 2PC + OCC over a chained-HotStuff-style ordering engine: `3f + 1`
    /// replicas, four voting rounds per ordered batch.
    TxHotstuff,
    /// 2PC + OCC over a PBFT-style (BFT-SMaRt) ordering engine: `3f + 1`
    /// replicas, two voting rounds per ordered batch.
    TxBftSmart,
}

impl SystemKind {
    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Tapir => "TAPIR",
            SystemKind::TxHotstuff => "TxHotstuff",
            SystemKind::TxBftSmart => "TxBFT-SMaRt",
        }
    }

    /// Number of replicas per shard for fault threshold `f`.
    pub fn replicas_per_shard(&self, f: u32) -> u32 {
        match self {
            SystemKind::Tapir => 2 * f + 1,
            SystemKind::TxHotstuff | SystemKind::TxBftSmart => 3 * f + 1,
        }
    }

    /// Number of leader/replica voting rounds before a batch is considered
    /// ordered (zero for TAPIR, which does not order requests).
    pub fn ordering_phases(&self) -> u32 {
        match self {
            SystemKind::Tapir => 0,
            SystemKind::TxHotstuff => 4,
            SystemKind::TxBftSmart => 2,
        }
    }

    /// Whether replicas and clients pay signature costs.
    pub fn uses_signatures(&self) -> bool {
        !matches!(self, SystemKind::Tapir)
    }

    /// Whether requests are ordered by a per-shard leader before execution.
    pub fn is_ordered(&self) -> bool {
        !matches!(self, SystemKind::Tapir)
    }
}

/// Configuration of a baseline deployment.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Which system to run.
    pub kind: SystemKind,
    /// Number of shards.
    pub num_shards: u32,
    /// Fault threshold per shard.
    pub f: u32,
    /// Consensus/request batch size at the shard leader (the paper tunes 4
    /// for TxHotstuff and 16 for TxBFT-SMaRt on TPC-C).
    pub batch_size: u32,
    /// Maximum time the leader waits before ordering a partial batch.
    pub batch_timeout: Duration,
    /// Cryptographic cost model (ignored for TAPIR).
    pub cost: CostModel,
    /// Client-side timeout before re-sending a prepare or decide.
    pub request_timeout: Duration,
    /// Client retry backoff after an aborted transaction.
    pub retry_backoff: Duration,
    /// Maximum retry backoff.
    pub max_backoff: Duration,
}

impl BaselineConfig {
    /// A default configuration for the given system with one shard and
    /// `f = 1`.
    pub fn new(kind: SystemKind) -> Self {
        BaselineConfig {
            kind,
            num_shards: 1,
            f: 1,
            batch_size: match kind {
                SystemKind::TxHotstuff => 4,
                SystemKind::TxBftSmart => 16,
                SystemKind::Tapir => 1,
            },
            batch_timeout: Duration::from_micros(500),
            cost: if kind.uses_signatures() {
                CostModel::ed25519_default()
            } else {
                CostModel::no_proofs()
            },
            request_timeout: Duration::from_millis(15),
            retry_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(50),
        }
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.num_shards = shards.max(1);
        self
    }

    /// Sets the leader batch size.
    pub fn with_batch_size(mut self, batch: u32) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Replicas per shard.
    pub fn n(&self) -> u32 {
        self.kind.replicas_per_shard(self.f)
    }

    /// Quorum of matching replica replies a client needs before trusting a
    /// result (`f + 1` for the BFT baselines, 1 for TAPIR).
    pub fn reply_quorum(&self) -> u32 {
        if self.kind.uses_signatures() {
            self.f + 1
        } else {
            1
        }
    }

    /// Consensus vote quorum within a shard (`2f + 1` of `3f + 1`).
    pub fn ordering_quorum(&self) -> u32 {
        2 * self.f + 1
    }

    /// Maps a key to its shard (same placement function as Basil so the
    /// workloads shard identically across systems).
    pub fn shard_for_key(&self, key: &Key) -> ShardId {
        ShardId((mix64(fnv1a(key.as_bytes())) % self.num_shards as u64) as u32)
    }

    /// All shards in the deployment.
    pub fn shards(&self) -> impl Iterator<Item = ShardId> {
        (0..self.num_shards).map(ShardId)
    }
}

fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::SystemConfig;

    #[test]
    fn replica_counts_match_the_paper() {
        assert_eq!(SystemKind::Tapir.replicas_per_shard(1), 3);
        assert_eq!(SystemKind::TxHotstuff.replicas_per_shard(1), 4);
        assert_eq!(SystemKind::TxBftSmart.replicas_per_shard(1), 4);
    }

    #[test]
    fn ordering_depth_ranks_hotstuff_above_pbft() {
        assert!(
            SystemKind::TxHotstuff.ordering_phases() > SystemKind::TxBftSmart.ordering_phases()
        );
        assert_eq!(SystemKind::Tapir.ordering_phases(), 0);
        assert!(!SystemKind::Tapir.is_ordered());
        assert!(SystemKind::TxHotstuff.is_ordered());
    }

    #[test]
    fn default_configs() {
        let hs = BaselineConfig::new(SystemKind::TxHotstuff);
        assert_eq!(hs.n(), 4);
        assert_eq!(hs.reply_quorum(), 2);
        assert_eq!(hs.ordering_quorum(), 3);
        assert!(hs.cost.enabled);

        let tapir = BaselineConfig::new(SystemKind::Tapir);
        assert_eq!(tapir.n(), 3);
        assert_eq!(tapir.reply_quorum(), 1);
        assert!(!tapir.cost.enabled);
    }

    #[test]
    fn key_placement_matches_basil() {
        // Both systems must shard the workload identically for a fair
        // comparison.
        let baseline = BaselineConfig::new(SystemKind::TxHotstuff).with_shards(3);
        let basil = SystemConfig::sharded(3);
        for i in 0..200 {
            let key = Key::new(format!("warehouse:{i}"));
            assert_eq!(baseline.shard_for_key(&key), basil.shard_for_key(&key));
        }
    }
}
