//! The baseline transaction-layer client.
//!
//! The client is the 2PC coordinator of the layered architecture the paper
//! describes for TxHotstuff and TxBFT-SMaRt (and, with direct execution, for
//! TAPIR): it executes reads, then submits a `Prepare` request to every
//! involved shard, waits for each shard's OCC vote, submits the
//! `Commit`/`Abort` decision, and (for the ordered systems) waits for the
//! decision to be ordered and acknowledged before reporting completion.
//! Like the Basil client it is a closed-loop driver with exponential backoff
//! on aborts.

use crate::messages::{BaselineClientTimer, BaselineMsg, ShardRequest};
use crate::profile::BaselineConfig;
use basil_common::{
    ClientId, Duration, Key, LatencyHistogram, NodeId, Op, ReplicaId, ShardId, SimTime, Timestamp,
    TxGenerator, TxId, TxProfile, Value,
};
use basil_simnet::{Actor, Context};
use basil_store::occ::OccVote;
use basil_store::{Transaction, TransactionBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Statistics collected by a baseline client.
#[derive(Clone, Debug, Default)]
pub struct BaselineClientStats {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted (retried) attempts.
    pub aborted_attempts: u64,
    /// Streaming histogram of commit latencies in nanoseconds (first
    /// attempt to completion); updated in O(1) per commit.
    pub latency: LatencyHistogram,
    /// Committed per workload label.
    pub per_label: HashMap<&'static str, u64>,
    /// Read operations issued.
    pub reads_issued: u64,
}

impl BaselineClientStats {
    /// Mean commit latency in milliseconds (exact: the histogram carries
    /// the exact sum of samples).
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency.mean_ms()
    }

    /// committed / (committed + aborted attempts).
    pub fn commit_rate(&self) -> f64 {
        let total = self.committed + self.aborted_attempts;
        if total == 0 {
            return 1.0;
        }
        self.committed as f64 / total as f64
    }
}

#[derive(Debug)]
struct PendingRead {
    req_id: u64,
    key: Key,
    rmw_delta: Option<i64>,
    replies: Vec<(Timestamp, Value)>,
    wait_for: u32,
}

#[derive(Debug)]
struct Executing {
    builder: TransactionBuilder,
    ops: Vec<Op>,
    op_index: usize,
    pending_read: Option<PendingRead>,
}

#[derive(Debug)]
struct Preparing {
    tx: Arc<Transaction>,
    txid: TxId,
    involved: Vec<ShardId>,
    /// Per shard: votes by replica index.
    votes: HashMap<ShardId, HashMap<u32, OccVote>>,
    decided: HashMap<ShardId, bool>,
}

#[derive(Debug)]
struct Deciding {
    txid: TxId,
    involved: Vec<ShardId>,
    commit: bool,
    acks: HashMap<ShardId, HashSet<u32>>,
}

#[derive(Debug)]
enum Phase {
    Executing(Executing),
    Preparing(Preparing),
    Deciding(Deciding),
    WaitingRetry,
}

#[derive(Debug)]
struct InFlight {
    profile: TxProfile,
    first_started: SimTime,
    phase: Phase,
}

/// A baseline system client.
pub struct BaselineClient {
    id: ClientId,
    cfg: BaselineConfig,
    generator: Box<dyn TxGenerator>,
    rng: SmallRng,
    next_req_id: u64,
    last_ts: u64,
    current: Option<InFlight>,
    backoff: Duration,
    stats: BaselineClientStats,
    stopped: bool,
}

impl BaselineClient {
    /// Creates a client driven by `generator`.
    pub fn new(
        id: ClientId,
        cfg: BaselineConfig,
        generator: Box<dyn TxGenerator>,
        seed: u64,
    ) -> Self {
        let backoff = cfg.retry_backoff;
        BaselineClient {
            id,
            cfg,
            generator,
            rng: SmallRng::seed_from_u64(seed ^ id.0.rotate_left(17)),
            next_req_id: 0,
            last_ts: 0,
            current: None,
            backoff,
            stats: BaselineClientStats::default(),
            stopped: false,
        }
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &BaselineClientStats {
        &self.stats
    }

    /// The client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    fn fresh_timestamp(&mut self, ctx: &Context<BaselineMsg>) -> Timestamp {
        let mut t = ctx.local_clock().as_nanos();
        if t <= self.last_ts {
            t = self.last_ts + 1;
        }
        self.last_ts = t;
        Timestamp::from_nanos(t, self.id)
    }

    fn replicas_of(&self, shard: ShardId) -> Vec<NodeId> {
        (0..self.cfg.n())
            .map(|i| NodeId::Replica(ReplicaId::new(shard, i)))
            .collect()
    }

    fn leader_of(&self, shard: ShardId) -> NodeId {
        NodeId::Replica(ReplicaId::new(shard, 0))
    }

    /// Where `Prepare`/`Decide` requests go: the leader for ordered systems,
    /// every replica for TAPIR.
    fn submit_targets(&self, shard: ShardId) -> Vec<NodeId> {
        if self.cfg.kind.is_ordered() {
            vec![self.leader_of(shard)]
        } else {
            self.replicas_of(shard)
        }
    }

    fn involved_shards(&self, tx: &Transaction) -> Vec<ShardId> {
        let mut shards: Vec<ShardId> = tx
            .read_set()
            .iter()
            .map(|r| self.cfg.shard_for_key(&r.key))
            .chain(
                tx.write_set()
                    .iter()
                    .map(|w| self.cfg.shard_for_key(&w.key)),
            )
            .collect();
        shards.sort();
        shards.dedup();
        shards
    }

    // ------------------------------------------------------------------
    // Closed loop
    // ------------------------------------------------------------------

    fn start_next_transaction(&mut self, ctx: &mut Context<BaselineMsg>) {
        if self.stopped {
            return;
        }
        let Some(profile) = self.generator.next_tx() else {
            self.stopped = true;
            self.current = None;
            return;
        };
        self.current = Some(InFlight {
            profile,
            first_started: ctx.now(),
            phase: Phase::WaitingRetry,
        });
        self.backoff = self.cfg.retry_backoff;
        self.begin_attempt(ctx);
    }

    fn begin_attempt(&mut self, ctx: &mut Context<BaselineMsg>) {
        let ts = self.fresh_timestamp(ctx);
        let Some(current) = self.current.as_mut() else {
            return;
        };
        let ops = current.profile.ops.clone();
        current.phase = Phase::Executing(Executing {
            builder: TransactionBuilder::new(ts),
            ops,
            op_index: 0,
            pending_read: None,
        });
        self.advance_execution(ctx);
    }

    fn advance_execution(&mut self, ctx: &mut Context<BaselineMsg>) {
        loop {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Executing(exec) = &mut current.phase else {
                return;
            };
            if exec.pending_read.is_some() {
                return;
            }
            if exec.op_index >= exec.ops.len() {
                self.send_prepares(ctx);
                return;
            }
            match exec.ops[exec.op_index].clone() {
                Op::Write(key, value) => {
                    exec.builder.record_write(key, value);
                    exec.op_index += 1;
                }
                op @ (Op::Read(_) | Op::RmwAdd { .. }) => {
                    let key = op.key().clone();
                    let rmw_delta = match op {
                        Op::RmwAdd { delta, .. } => Some(delta),
                        _ => None,
                    };
                    if let Some(buffered) = exec.builder.buffered_value(&key).cloned() {
                        if let Some(delta) = rmw_delta {
                            exec.builder
                                .record_write(key, apply_delta(&buffered, delta));
                        }
                        exec.op_index += 1;
                        continue;
                    }
                    self.issue_read(ctx, key, rmw_delta);
                    return;
                }
            }
        }
    }

    fn issue_read(&mut self, ctx: &mut Context<BaselineMsg>, key: Key, rmw_delta: Option<i64>) {
        self.next_req_id += 1;
        let req_id = self.next_req_id;
        let shard = self.cfg.shard_for_key(&key);
        let wait_for = self.cfg.reply_quorum();
        // TAPIR reads from one (random) replica; the BFT baselines need f+1
        // matching replies, so they contact f+1 replicas.
        let targets: Vec<NodeId> = if self.cfg.kind.uses_signatures() {
            self.replicas_of(shard)
                .into_iter()
                .take(wait_for as usize)
                .collect()
        } else {
            let all = self.replicas_of(shard);
            let pick = self.rng.gen_range(0..all.len());
            vec![all[pick]]
        };
        {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Executing(exec) = &mut current.phase else {
                return;
            };
            exec.pending_read = Some(PendingRead {
                req_id,
                key: key.clone(),
                rmw_delta,
                replies: Vec::new(),
                wait_for,
            });
        }
        self.stats.reads_issued += 1;
        for target in targets {
            ctx.charge(self.cfg.cost.message_cost());
            ctx.send(
                target,
                BaselineMsg::Read {
                    req_id,
                    key: key.clone(),
                },
            );
        }
        ctx.schedule_self(
            self.cfg.request_timeout,
            BaselineMsg::ClientTimer(BaselineClientTimer::ReadTimeout { req_id }),
        );
    }

    fn handle_read_reply(
        &mut self,
        ctx: &mut Context<BaselineMsg>,
        req_id: u64,
        version: Timestamp,
        value: Value,
    ) {
        if self.cfg.kind.uses_signatures() {
            ctx.charge(self.cfg.cost.verify_cost());
        }
        let ready = {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Executing(exec) = &mut current.phase else {
                return;
            };
            let Some(pending) = exec.pending_read.as_mut() else {
                return;
            };
            if pending.req_id != req_id {
                return;
            }
            pending.replies.push((version, value));
            pending.replies.len() as u32 >= pending.wait_for
        };
        if !ready {
            return;
        }
        let (key, rmw_delta, replies) = {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Executing(exec) = &mut current.phase else {
                return;
            };
            let pending = exec.pending_read.take().expect("checked above");
            (pending.key, pending.rmw_delta, pending.replies)
        };
        // Use the freshest version among the replies.
        let (version, value) = replies
            .into_iter()
            .max_by_key(|(v, _)| *v)
            .unwrap_or((Timestamp::ZERO, Value::empty()));
        let Some(current) = self.current.as_mut() else {
            return;
        };
        let Phase::Executing(exec) = &mut current.phase else {
            return;
        };
        exec.builder.record_read(key.clone(), version);
        if let Some(delta) = rmw_delta {
            exec.builder.record_write(key, apply_delta(&value, delta));
        }
        exec.op_index += 1;
        self.advance_execution(ctx);
    }

    // ------------------------------------------------------------------
    // 2PC
    // ------------------------------------------------------------------

    fn send_prepares(&mut self, ctx: &mut Context<BaselineMsg>) {
        let tx = {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Executing(exec) = &mut current.phase else {
                return;
            };
            std::mem::replace(&mut exec.builder, TransactionBuilder::new(Timestamp::ZERO))
                .build_shared()
        };
        if tx.is_empty() {
            self.finish(ctx, true);
            return;
        }
        let txid = tx.id();
        let involved = self.involved_shards(&tx);
        for shard in &involved {
            for target in self.submit_targets(*shard) {
                if self.cfg.kind.uses_signatures() {
                    ctx.charge(self.cfg.cost.sign_cost());
                }
                ctx.charge(self.cfg.cost.message_cost());
                ctx.send(
                    target,
                    BaselineMsg::Submit {
                        request: ShardRequest::Prepare {
                            tx: Arc::clone(&tx),
                        },
                    },
                );
            }
        }
        if let Some(current) = self.current.as_mut() {
            current.phase = Phase::Preparing(Preparing {
                tx,
                txid,
                involved,
                votes: HashMap::new(),
                decided: HashMap::new(),
            });
        }
        ctx.schedule_self(
            self.cfg.request_timeout,
            BaselineMsg::ClientTimer(BaselineClientTimer::PrepareTimeout { txid }),
        );
    }

    fn handle_prepare_result(
        &mut self,
        ctx: &mut Context<BaselineMsg>,
        from: NodeId,
        txid: TxId,
        vote: OccVote,
    ) {
        if self.cfg.kind.uses_signatures() {
            ctx.charge(self.cfg.cost.verify_cost());
        }
        // For the ordered systems all correct replicas execute the prepare
        // identically, so `f + 1` matching votes decide a shard. TAPIR
        // replicas execute independently (inconsistent replication), so a
        // shard only commits when *all* its replicas agree — a single abort
        // vote aborts the shard. This mirrors TAPIR's fast quorum while
        // keeping every replica's store consistent.
        let (commit_quorum, abort_quorum) = if self.cfg.kind.is_ordered() {
            (self.cfg.reply_quorum(), self.cfg.reply_quorum())
        } else {
            (self.cfg.n(), 1)
        };
        let outcome = {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Preparing(prep) = &mut current.phase else {
                return;
            };
            if prep.txid != txid {
                return;
            }
            let Some(replica) = from.as_replica() else {
                return;
            };
            prep.votes
                .entry(replica.shard)
                .or_default()
                .insert(replica.index, vote);
            // A shard is decided once enough matching votes are in.
            for (shard, votes) in prep.votes.iter() {
                if prep.decided.contains_key(shard) {
                    continue;
                }
                let commits = votes.values().filter(|v| v.is_commit()).count() as u32;
                let aborts = votes.len() as u32 - commits;
                if commits >= commit_quorum {
                    prep.decided.insert(*shard, true);
                } else if aborts >= abort_quorum {
                    prep.decided.insert(*shard, false);
                }
            }
            if prep.involved.iter().all(|s| prep.decided.contains_key(s)) {
                Some((
                    prep.involved.clone(),
                    prep.involved.iter().all(|s| prep.decided[s]),
                ))
            } else {
                None
            }
        };
        let Some((involved, commit)) = outcome else {
            return;
        };
        self.send_decides(ctx, txid, involved, commit);
    }

    fn send_decides(
        &mut self,
        ctx: &mut Context<BaselineMsg>,
        txid: TxId,
        involved: Vec<ShardId>,
        commit: bool,
    ) {
        for shard in &involved {
            for target in self.submit_targets(*shard) {
                if self.cfg.kind.uses_signatures() {
                    ctx.charge(self.cfg.cost.sign_cost());
                }
                ctx.charge(self.cfg.cost.message_cost());
                ctx.send(
                    target,
                    BaselineMsg::Submit {
                        request: ShardRequest::Decide { txid, commit },
                    },
                );
            }
        }
        if self.cfg.kind.is_ordered() {
            // The ordered systems must wait for the decision to be ordered
            // and acknowledged.
            if let Some(current) = self.current.as_mut() {
                current.phase = Phase::Deciding(Deciding {
                    txid,
                    involved,
                    commit,
                    acks: HashMap::new(),
                });
            }
            ctx.schedule_self(
                self.cfg.request_timeout,
                BaselineMsg::ClientTimer(BaselineClientTimer::DecideTimeout { txid }),
            );
        } else {
            // TAPIR: the decision is final as soon as the client determines
            // it; the commit message is asynchronous.
            self.finish(ctx, commit);
        }
    }

    fn handle_decide_ack(&mut self, ctx: &mut Context<BaselineMsg>, from: NodeId, txid: TxId) {
        let quorum = self.cfg.reply_quorum();
        let done = {
            let Some(current) = self.current.as_mut() else {
                return;
            };
            let Phase::Deciding(dec) = &mut current.phase else {
                return;
            };
            if dec.txid != txid {
                return;
            }
            let Some(replica) = from.as_replica() else {
                return;
            };
            dec.acks
                .entry(replica.shard)
                .or_default()
                .insert(replica.index);
            dec.involved
                .iter()
                .all(|s| {
                    dec.acks
                        .get(s)
                        .map(|a| a.len() as u32 >= quorum)
                        .unwrap_or(false)
                })
                .then_some(dec.commit)
        };
        if let Some(commit) = done {
            self.finish(ctx, commit);
        }
    }

    fn finish(&mut self, ctx: &mut Context<BaselineMsg>, committed: bool) {
        let Some(current) = self.current.as_ref() else {
            return;
        };
        if committed {
            self.stats.committed += 1;
            let latency = ctx.now() - current.first_started;
            self.stats.latency.record(latency.as_nanos());
            *self
                .stats
                .per_label
                .entry(current.profile.label)
                .or_insert(0) += 1;
            self.current = None;
            self.start_next_transaction(ctx);
        } else {
            self.stats.aborted_attempts += 1;
            let jitter = self.rng.gen_range(0..self.backoff.as_nanos().max(1));
            let delay = self.backoff + Duration::from_nanos(jitter);
            self.backoff = Duration::from_nanos(
                (self.backoff.as_nanos() * 2).min(self.cfg.max_backoff.as_nanos()),
            );
            if let Some(current) = self.current.as_mut() {
                current.phase = Phase::WaitingRetry;
            }
            ctx.schedule_self(
                delay,
                BaselineMsg::ClientTimer(BaselineClientTimer::RetryBackoff),
            );
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn handle_timer(&mut self, ctx: &mut Context<BaselineMsg>, timer: BaselineClientTimer) {
        match timer {
            BaselineClientTimer::ReadTimeout { req_id } => {
                let pending = {
                    let Some(current) = self.current.as_ref() else {
                        return;
                    };
                    let Phase::Executing(exec) = &current.phase else {
                        return;
                    };
                    match &exec.pending_read {
                        Some(p) if p.req_id == req_id => Some(p.key.clone()),
                        _ => None,
                    }
                };
                if let Some(key) = pending {
                    // Widen to every replica of the shard and keep waiting.
                    let shard = self.cfg.shard_for_key(&key);
                    for target in self.replicas_of(shard) {
                        ctx.charge(self.cfg.cost.message_cost());
                        ctx.send(
                            target,
                            BaselineMsg::Read {
                                req_id,
                                key: key.clone(),
                            },
                        );
                    }
                    ctx.schedule_self(
                        self.cfg.request_timeout,
                        BaselineMsg::ClientTimer(BaselineClientTimer::ReadTimeout { req_id }),
                    );
                }
            }
            BaselineClientTimer::PrepareTimeout { txid } => {
                let resend = {
                    match self.current.as_ref().map(|c| &c.phase) {
                        Some(Phase::Preparing(p)) if p.txid == txid => {
                            Some((p.tx.clone(), p.involved.clone()))
                        }
                        _ => None,
                    }
                };
                if let Some((tx, involved)) = resend {
                    for shard in &involved {
                        for target in self.submit_targets(*shard) {
                            ctx.charge(self.cfg.cost.message_cost());
                            ctx.send(
                                target,
                                BaselineMsg::Submit {
                                    request: ShardRequest::Prepare {
                                        tx: Arc::clone(&tx),
                                    },
                                },
                            );
                        }
                    }
                    ctx.schedule_self(
                        self.cfg.request_timeout,
                        BaselineMsg::ClientTimer(BaselineClientTimer::PrepareTimeout { txid }),
                    );
                }
            }
            BaselineClientTimer::DecideTimeout { txid } => {
                let resend = {
                    match self.current.as_ref().map(|c| &c.phase) {
                        Some(Phase::Deciding(d)) if d.txid == txid => {
                            Some((d.involved.clone(), d.commit))
                        }
                        _ => None,
                    }
                };
                if let Some((involved, commit)) = resend {
                    for shard in &involved {
                        for target in self.submit_targets(*shard) {
                            ctx.charge(self.cfg.cost.message_cost());
                            ctx.send(
                                target,
                                BaselineMsg::Submit {
                                    request: ShardRequest::Decide { txid, commit },
                                },
                            );
                        }
                    }
                    ctx.schedule_self(
                        self.cfg.request_timeout,
                        BaselineMsg::ClientTimer(BaselineClientTimer::DecideTimeout { txid }),
                    );
                }
            }
            BaselineClientTimer::RetryBackoff => {
                if matches!(
                    self.current.as_ref().map(|c| &c.phase),
                    Some(Phase::WaitingRetry)
                ) {
                    self.begin_attempt(ctx);
                }
            }
        }
    }
}

fn apply_delta(value: &Value, delta: i64) -> Value {
    let current = value.as_u64().unwrap_or(0);
    let new = if delta >= 0 {
        current.saturating_add(delta as u64)
    } else {
        current.saturating_sub(delta.unsigned_abs())
    };
    Value::from_u64(new)
}

impl Actor<BaselineMsg> for BaselineClient {
    fn on_start(&mut self, ctx: &mut Context<BaselineMsg>) {
        self.start_next_transaction(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<BaselineMsg>, from: NodeId, msg: BaselineMsg) {
        ctx.charge(self.cfg.cost.message_cost());
        match msg {
            BaselineMsg::ReadReply {
                req_id,
                version,
                value,
                ..
            } => self.handle_read_reply(ctx, req_id, version, value),
            BaselineMsg::PrepareResult { txid, vote } => {
                self.handle_prepare_result(ctx, from, txid, vote)
            }
            BaselineMsg::DecideAck { txid } => self.handle_decide_ack(ctx, from, txid),
            BaselineMsg::ClientTimer(timer) => self.handle_timer(ctx, timer),
            // Replica-directed traffic is ignored.
            BaselineMsg::Read { .. }
            | BaselineMsg::Submit { .. }
            | BaselineMsg::OrderPhase { .. }
            | BaselineMsg::OrderVote { .. }
            | BaselineMsg::OrderCommit { .. }
            | BaselineMsg::BatchTimer => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SystemKind;
    use basil_common::ScriptedGenerator;

    fn ctx() -> Context<BaselineMsg> {
        Context::new(
            NodeId::Client(ClientId(1)),
            SimTime::from_millis(1),
            SimTime::from_millis(1),
        )
    }

    fn sent(ctx: &Context<BaselineMsg>) -> Vec<(NodeId, BaselineMsg)> {
        ctx.outputs()
            .iter()
            .filter_map(|o| match o {
                basil_simnet::actor::Output::Send { to, msg } => Some((*to, msg.clone())),
                _ => None,
            })
            .collect()
    }

    fn client(kind: SystemKind, profiles: Vec<TxProfile>) -> BaselineClient {
        BaselineClient::new(
            ClientId(1),
            BaselineConfig::new(kind),
            Box::new(ScriptedGenerator::new(profiles)),
            9,
        )
    }

    #[test]
    fn tapir_write_only_tx_prepares_on_all_replicas() {
        let profile = TxProfile::new("w", vec![Op::Write(Key::new("x"), Value::from_u64(1))]);
        let mut c = client(SystemKind::Tapir, vec![profile]);
        let mut cx = ctx();
        c.on_start(&mut cx);
        let prepares = sent(&cx)
            .iter()
            .filter(|(_, m)| {
                matches!(
                    m,
                    BaselineMsg::Submit {
                        request: ShardRequest::Prepare { .. }
                    }
                )
            })
            .count();
        assert_eq!(prepares, 3, "TAPIR sends prepares to all 2f+1 replicas");
    }

    #[test]
    fn ordered_system_submits_to_the_leader_only() {
        let profile = TxProfile::new("w", vec![Op::Write(Key::new("x"), Value::from_u64(1))]);
        let mut c = client(SystemKind::TxHotstuff, vec![profile]);
        let mut cx = ctx();
        c.on_start(&mut cx);
        let submits: Vec<_> = sent(&cx)
            .into_iter()
            .filter(|(_, m)| matches!(m, BaselineMsg::Submit { .. }))
            .collect();
        assert_eq!(submits.len(), 1);
        assert_eq!(
            submits[0].0,
            NodeId::Replica(ReplicaId::new(ShardId(0), 0)),
            "prepare goes to the shard leader"
        );
    }

    #[test]
    fn tapir_read_goes_to_a_single_replica() {
        let profile = TxProfile::new("r", vec![Op::Read(Key::new("x"))]);
        let mut c = client(SystemKind::Tapir, vec![profile]);
        let mut cx = ctx();
        c.on_start(&mut cx);
        let reads = sent(&cx)
            .iter()
            .filter(|(_, m)| matches!(m, BaselineMsg::Read { .. }))
            .count();
        assert_eq!(reads, 1);
    }

    #[test]
    fn bft_read_contacts_f_plus_one_replicas() {
        let profile = TxProfile::new("r", vec![Op::Read(Key::new("x"))]);
        let mut c = client(SystemKind::TxBftSmart, vec![profile]);
        let mut cx = ctx();
        c.on_start(&mut cx);
        let reads = sent(&cx)
            .iter()
            .filter(|(_, m)| matches!(m, BaselineMsg::Read { .. }))
            .count();
        assert_eq!(reads, 2);
    }

    #[test]
    fn tapir_commits_after_unanimous_prepare_votes() {
        let profile = TxProfile::new("w", vec![Op::Write(Key::new("x"), Value::from_u64(1))]);
        let mut c = client(SystemKind::Tapir, vec![profile]);
        let mut cx = ctx();
        c.on_start(&mut cx);
        // Find the txid from the outgoing prepare.
        let txid = sent(&cx)
            .iter()
            .find_map(|(_, m)| match m {
                BaselineMsg::Submit {
                    request: ShardRequest::Prepare { tx },
                } => Some(tx.id()),
                _ => None,
            })
            .expect("prepare sent");
        // TAPIR's fast quorum: all 2f + 1 replicas must vote commit.
        let mut last_ctx = ctx();
        for i in 0..3 {
            last_ctx = ctx();
            c.on_message(
                &mut last_ctx,
                NodeId::Replica(ReplicaId::new(ShardId(0), i)),
                BaselineMsg::PrepareResult {
                    txid,
                    vote: OccVote::Commit,
                },
            );
            if i < 2 {
                assert_eq!(c.stats().committed, 0, "not committed before unanimity");
            }
        }
        assert_eq!(c.stats().committed, 1);
        // The decision was broadcast asynchronously.
        let decides = sent(&last_ctx)
            .iter()
            .filter(|(_, m)| {
                matches!(
                    m,
                    BaselineMsg::Submit {
                        request: ShardRequest::Decide { commit: true, .. }
                    }
                )
            })
            .count();
        assert_eq!(decides, 3);
    }

    #[test]
    fn ordered_system_waits_for_decide_acks() {
        let profile = TxProfile::new("w", vec![Op::Write(Key::new("x"), Value::from_u64(1))]);
        let mut c = client(SystemKind::TxBftSmart, vec![profile]);
        let mut cx = ctx();
        c.on_start(&mut cx);
        let txid = sent(&cx)
            .iter()
            .find_map(|(_, m)| match m {
                BaselineMsg::Submit {
                    request: ShardRequest::Prepare { tx },
                } => Some(tx.id()),
                _ => None,
            })
            .expect("prepare sent");
        // Two matching commit votes (f+1) decide the shard and trigger the
        // decide round.
        for i in 0..2 {
            let mut cxv = ctx();
            c.on_message(
                &mut cxv,
                NodeId::Replica(ReplicaId::new(ShardId(0), i)),
                BaselineMsg::PrepareResult {
                    txid,
                    vote: OccVote::Commit,
                },
            );
        }
        assert_eq!(
            c.stats().committed,
            0,
            "not committed until decide is acked"
        );
        for i in 0..2 {
            let mut cxa = ctx();
            c.on_message(
                &mut cxa,
                NodeId::Replica(ReplicaId::new(ShardId(0), i)),
                BaselineMsg::DecideAck { txid },
            );
        }
        assert_eq!(c.stats().committed, 1);
    }

    #[test]
    fn aborted_prepare_schedules_a_retry() {
        let profile = TxProfile::new("w", vec![Op::Write(Key::new("x"), Value::from_u64(1))]);
        let mut c = client(SystemKind::Tapir, vec![profile]);
        let mut cx = ctx();
        c.on_start(&mut cx);
        let txid = sent(&cx)
            .iter()
            .find_map(|(_, m)| match m {
                BaselineMsg::Submit {
                    request: ShardRequest::Prepare { tx },
                } => Some(tx.id()),
                _ => None,
            })
            .expect("prepare");
        let mut cx2 = ctx();
        c.on_message(
            &mut cx2,
            NodeId::Replica(ReplicaId::new(ShardId(0), 0)),
            BaselineMsg::PrepareResult {
                txid,
                vote: OccVote::Abort(basil_common::error::AbortReason::Conflict),
            },
        );
        assert_eq!(c.stats().aborted_attempts, 1);
        assert_eq!(c.stats().committed, 0);
        // A retry backoff timer was armed.
        assert!(cx2
            .outputs()
            .iter()
            .any(|o| matches!(o, basil_simnet::actor::Output::Timer { .. })));
    }
}
