//! Baseline shard replicas.
//!
//! For the BFT baselines every shard runs a leader-based ordering engine:
//! clients submit requests to the shard leader, the leader batches them and
//! drives `ordering_phases` voting rounds with the other replicas, and once a
//! batch is ordered every replica executes it, in sequence order, against its
//! OCC store and replies to the issuing clients. For TAPIR, replicas execute
//! prepares directly on receipt (inconsistent replication), which is what
//! gives TAPIR its single-round-trip common case.

use crate::messages::{BaselineMsg, ShardRequest};
use crate::profile::BaselineConfig;
use basil_common::{Duration, Key, NodeId, ReplicaId, Value};
use basil_simnet::{Actor, Context};
use basil_store::occ::OccStore;
use std::any::Any;
use std::collections::{HashMap, HashSet};

/// Counters exposed for tests and experiments.
#[derive(Clone, Debug, Default)]
pub struct BaselineReplicaStats {
    /// Requests executed (prepares + decides).
    pub requests_executed: u64,
    /// Consensus instances ordered.
    pub batches_ordered: u64,
    /// Reads served.
    pub reads_served: u64,
    /// Prepares that voted commit.
    pub prepares_committed: u64,
    /// Prepares that voted abort.
    pub prepares_aborted: u64,
}

/// In-flight consensus instance state kept by the leader.
#[derive(Debug)]
struct Instance {
    phase: u32,
    votes: HashSet<u32>,
}

/// A baseline shard replica (leader or follower).
pub struct BaselineReplica {
    id: ReplicaId,
    cfg: BaselineConfig,
    occ: OccStore,
    // Leader state.
    pending: Vec<(NodeId, ShardRequest)>,
    batch_timer_armed: bool,
    next_seq: u64,
    instances: HashMap<u64, Instance>,
    // Shared ordering state.
    batches: HashMap<u64, Vec<(NodeId, ShardRequest)>>,
    ready: HashSet<u64>,
    next_exec: u64,
    stats: BaselineReplicaStats,
}

impl BaselineReplica {
    /// Creates a replica preloaded with `initial_data`.
    pub fn new(
        id: ReplicaId,
        cfg: BaselineConfig,
        initial_data: impl IntoIterator<Item = (Key, Value)>,
    ) -> Self {
        BaselineReplica {
            id,
            cfg,
            occ: OccStore::with_initial_data(initial_data),
            pending: Vec::new(),
            batch_timer_armed: false,
            next_seq: 0,
            instances: HashMap::new(),
            batches: HashMap::new(),
            ready: HashSet::new(),
            next_exec: 1,
            stats: BaselineReplicaStats::default(),
        }
    }

    /// This replica's identity.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Counters collected so far.
    pub fn stats(&self) -> &BaselineReplicaStats {
        &self.stats
    }

    /// Read access to the OCC store (tests, examples).
    pub fn store(&self) -> &OccStore {
        &self.occ
    }

    fn is_leader(&self) -> bool {
        self.id.index == 0
    }

    fn leader(&self) -> NodeId {
        NodeId::Replica(ReplicaId::new(self.id.shard, 0))
    }

    fn followers(&self) -> Vec<NodeId> {
        (1..self.cfg.n())
            .map(|i| NodeId::Replica(ReplicaId::new(self.id.shard, i)))
            .collect()
    }

    fn sign_cost(&self) -> Duration {
        if self.cfg.kind.uses_signatures() {
            self.cfg.cost.sign_cost()
        } else {
            Duration::ZERO
        }
    }

    fn verify_cost(&self) -> Duration {
        if self.cfg.kind.uses_signatures() {
            self.cfg.cost.verify_cost()
        } else {
            Duration::ZERO
        }
    }

    // ------------------------------------------------------------------
    // Request intake
    // ------------------------------------------------------------------

    fn handle_submit(
        &mut self,
        ctx: &mut Context<BaselineMsg>,
        from: NodeId,
        request: ShardRequest,
    ) {
        ctx.charge(self.verify_cost());
        if !self.cfg.kind.is_ordered() {
            // TAPIR: execute immediately.
            self.execute(ctx, from, request);
            return;
        }
        if !self.is_leader() {
            // Forward stray submissions to the leader.
            ctx.charge(self.cfg.cost.message_cost());
            ctx.send(self.leader(), BaselineMsg::Submit { request });
            return;
        }
        self.pending.push((from, request));
        if self.pending.len() >= self.cfg.batch_size as usize {
            self.start_instance(ctx);
        } else if !self.batch_timer_armed {
            self.batch_timer_armed = true;
            ctx.schedule_self(self.cfg.batch_timeout, BaselineMsg::BatchTimer);
        }
    }

    fn start_instance(&mut self, ctx: &mut Context<BaselineMsg>) {
        if self.pending.is_empty() {
            return;
        }
        self.next_seq += 1;
        let seq = self.next_seq;
        let batch: Vec<(NodeId, ShardRequest)> = std::mem::take(&mut self.pending);
        self.batches.insert(seq, batch.clone());
        self.instances.insert(
            seq,
            Instance {
                phase: 0,
                votes: HashSet::new(),
            },
        );
        // Phase 0 proposal carries the batch; the leader signs it.
        ctx.charge(self.sign_cost());
        for follower in self.followers() {
            ctx.charge(self.cfg.cost.message_cost());
            ctx.send(
                follower,
                BaselineMsg::OrderPhase {
                    seq,
                    phase: 0,
                    batch: Some(batch.clone()),
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Ordering protocol
    // ------------------------------------------------------------------

    fn handle_order_phase(
        &mut self,
        ctx: &mut Context<BaselineMsg>,
        seq: u64,
        phase: u32,
        batch: Option<Vec<(NodeId, ShardRequest)>>,
    ) {
        // Follower: verify the proposal, store the batch, vote.
        ctx.charge(self.verify_cost());
        if let Some(batch) = batch {
            self.batches.entry(seq).or_insert(batch);
            // An OrderCommit may have arrived before the batch payload
            // (message reordering); execution can proceed now.
            self.try_execute(ctx);
        }
        ctx.charge(self.sign_cost() + self.cfg.cost.message_cost());
        ctx.send(self.leader(), BaselineMsg::OrderVote { seq, phase });
    }

    fn handle_order_vote(
        &mut self,
        ctx: &mut Context<BaselineMsg>,
        from: NodeId,
        seq: u64,
        phase: u32,
    ) {
        if !self.is_leader() {
            return;
        }
        ctx.charge(self.verify_cost());
        let quorum = self.cfg.ordering_quorum();
        let phases = self.cfg.kind.ordering_phases();
        let Some(instance) = self.instances.get_mut(&seq) else {
            return;
        };
        if instance.phase != phase {
            return; // stale vote
        }
        if let Some(replica) = from.as_replica() {
            instance.votes.insert(replica.index);
        }
        // The leader's own vote counts implicitly.
        if (instance.votes.len() as u32 + 1) < quorum {
            return;
        }
        instance.votes.clear();
        instance.phase += 1;
        if instance.phase < phases {
            let next_phase = instance.phase;
            ctx.charge(self.sign_cost());
            for follower in self.followers() {
                ctx.charge(self.cfg.cost.message_cost());
                ctx.send(
                    follower,
                    BaselineMsg::OrderPhase {
                        seq,
                        phase: next_phase,
                        batch: None,
                    },
                );
            }
        } else {
            // Ordered: tell everyone (including ourselves) to execute.
            self.instances.remove(&seq);
            ctx.charge(self.sign_cost());
            for follower in self.followers() {
                ctx.charge(self.cfg.cost.message_cost());
                ctx.send(follower, BaselineMsg::OrderCommit { seq });
            }
            self.handle_order_commit(ctx, seq);
        }
    }

    fn handle_order_commit(&mut self, ctx: &mut Context<BaselineMsg>, seq: u64) {
        self.ready.insert(seq);
        self.stats.batches_ordered += u64::from(self.id.index == 0);
        self.try_execute(ctx);
    }

    /// Executes every consecutive ordered batch whose payload is available,
    /// in sequence order.
    fn try_execute(&mut self, ctx: &mut Context<BaselineMsg>) {
        while self.ready.contains(&self.next_exec) && self.batches.contains_key(&self.next_exec) {
            let seq = self.next_exec;
            self.ready.remove(&seq);
            self.next_exec += 1;
            let batch = self.batches.remove(&seq).expect("checked above");
            // Reply signatures for the whole batch are amortized through the
            // Merkle batching scheme the paper also grants the baselines.
            if self.cfg.kind.uses_signatures() {
                ctx.charge(self.cfg.cost.batch_sign_cost(batch.len().max(1), 64));
            }
            for (client, request) in batch {
                self.execute(ctx, client, request);
            }
        }
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    fn execute(&mut self, ctx: &mut Context<BaselineMsg>, client: NodeId, request: ShardRequest) {
        self.stats.requests_executed += 1;
        match request {
            ShardRequest::Prepare { tx } => {
                let vote = self.occ.prepare(&tx);
                if vote.is_commit() {
                    self.stats.prepares_committed += 1;
                } else {
                    self.stats.prepares_aborted += 1;
                }
                if !self.cfg.kind.is_ordered() {
                    // TAPIR signs nothing but still pays serialization.
                    ctx.charge(self.cfg.cost.message_cost());
                }
                ctx.charge(self.cfg.cost.message_cost());
                ctx.send(
                    client,
                    BaselineMsg::PrepareResult {
                        txid: tx.id(),
                        vote,
                    },
                );
            }
            ShardRequest::Decide { txid, commit } => {
                if commit {
                    self.occ.commit(&txid);
                } else {
                    self.occ.abort(&txid);
                }
                ctx.charge(self.cfg.cost.message_cost());
                ctx.send(client, BaselineMsg::DecideAck { txid });
            }
        }
    }

    fn handle_read(&mut self, ctx: &mut Context<BaselineMsg>, from: NodeId, req_id: u64, key: Key) {
        self.stats.reads_served += 1;
        let (version, value) = self.occ.read(&key);
        if self.cfg.kind.uses_signatures() {
            ctx.charge(self.cfg.cost.sign_cost());
        }
        ctx.charge(self.cfg.cost.message_cost());
        ctx.send(
            from,
            BaselineMsg::ReadReply {
                req_id,
                key,
                version,
                value,
            },
        );
    }
}

impl Actor<BaselineMsg> for BaselineReplica {
    fn on_message(&mut self, ctx: &mut Context<BaselineMsg>, from: NodeId, msg: BaselineMsg) {
        ctx.charge(self.cfg.cost.message_cost());
        match msg {
            BaselineMsg::Read { req_id, key } => self.handle_read(ctx, from, req_id, key),
            BaselineMsg::Submit { request } => self.handle_submit(ctx, from, request),
            BaselineMsg::OrderPhase { seq, phase, batch } => {
                self.handle_order_phase(ctx, seq, phase, batch)
            }
            BaselineMsg::OrderVote { seq, phase } => self.handle_order_vote(ctx, from, seq, phase),
            BaselineMsg::OrderCommit { seq } => self.handle_order_commit(ctx, seq),
            BaselineMsg::BatchTimer => {
                self.batch_timer_armed = false;
                if self.is_leader() {
                    self.start_instance(ctx);
                }
            }
            // Client-directed messages are ignored if misrouted.
            BaselineMsg::ReadReply { .. }
            | BaselineMsg::PrepareResult { .. }
            | BaselineMsg::DecideAck { .. }
            | BaselineMsg::ClientTimer(_) => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SystemKind;
    use basil_common::{ClientId, ShardId, SimTime, Timestamp};
    use basil_store::TransactionBuilder;

    fn client() -> NodeId {
        NodeId::Client(ClientId(7))
    }

    fn ctx(node: NodeId) -> Context<BaselineMsg> {
        Context::new(node, SimTime::from_millis(1), SimTime::from_millis(1))
    }

    fn tapir_replica(index: u32) -> BaselineReplica {
        BaselineReplica::new(
            ReplicaId::new(ShardId(0), index),
            BaselineConfig::new(SystemKind::Tapir),
            [(Key::new("x"), Value::from_u64(0))],
        )
    }

    fn write_tx(t: u64) -> std::sync::Arc<basil_store::Transaction> {
        let mut b = TransactionBuilder::new(Timestamp::from_nanos(t, ClientId(7)));
        b.record_write(Key::new("x"), Value::from_u64(t));
        b.build_shared()
    }

    fn sent(ctx: &Context<BaselineMsg>) -> Vec<(NodeId, BaselineMsg)> {
        ctx.outputs()
            .iter()
            .filter_map(|o| match o {
                basil_simnet::actor::Output::Send { to, msg } => Some((*to, msg.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tapir_prepare_executes_immediately() {
        let mut r = tapir_replica(0);
        let mut c = ctx(NodeId::Replica(r.id()));
        let tx = write_tx(100);
        r.handle_submit(&mut c, client(), ShardRequest::Prepare { tx: tx.clone() });
        let out = sent(&c);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0].1,
            BaselineMsg::PrepareResult { txid, vote } if txid == tx.id() && vote.is_commit()
        ));
        assert_eq!(r.stats().requests_executed, 1);
    }

    #[test]
    fn tapir_decide_applies_and_acks() {
        let mut r = tapir_replica(0);
        let tx = write_tx(100);
        let mut c1 = ctx(NodeId::Replica(r.id()));
        r.handle_submit(&mut c1, client(), ShardRequest::Prepare { tx: tx.clone() });
        let mut c2 = ctx(NodeId::Replica(r.id()));
        r.handle_submit(
            &mut c2,
            client(),
            ShardRequest::Decide {
                txid: tx.id(),
                commit: true,
            },
        );
        assert!(matches!(sent(&c2)[0].1, BaselineMsg::DecideAck { .. }));
        assert_eq!(
            r.store().committed_value(&Key::new("x")),
            Some(Value::from_u64(100))
        );
    }

    #[test]
    fn read_returns_current_value() {
        let mut r = tapir_replica(1);
        let mut c = ctx(NodeId::Replica(r.id()));
        r.handle_read(&mut c, client(), 9, Key::new("x"));
        match &sent(&c)[0].1 {
            BaselineMsg::ReadReply { req_id, value, .. } => {
                assert_eq!(*req_id, 9);
                assert_eq!(*value, Value::from_u64(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Drives a full ordering round for a 4-replica PBFT-style shard by hand
    /// and checks that every replica executes the batch and replies.
    #[test]
    fn ordered_shard_executes_after_voting_rounds() {
        let cfg = BaselineConfig::new(SystemKind::TxBftSmart).with_batch_size(1);
        let mut replicas: Vec<BaselineReplica> = (0..4)
            .map(|i| {
                BaselineReplica::new(
                    ReplicaId::new(ShardId(0), i),
                    cfg.clone(),
                    [(Key::new("x"), Value::from_u64(0))],
                )
            })
            .collect();
        let tx = write_tx(50);

        // Client submits to the leader; batch size 1 starts an instance.
        let leader_id = NodeId::Replica(replicas[0].id());
        let mut c = ctx(leader_id);
        replicas[0].handle_submit(&mut c, client(), ShardRequest::Prepare { tx: tx.clone() });
        let mut inflight: Vec<(NodeId, NodeId, BaselineMsg)> = sent(&c)
            .into_iter()
            .map(|(to, msg)| (leader_id, to, msg))
            .collect();
        let mut client_msgs = Vec::new();

        // Deliver messages until quiescence, preserving sender identity.
        let mut steps = 0;
        while let Some((from, to, msg)) = inflight.pop() {
            steps += 1;
            assert!(steps < 200, "ordering should terminate");
            match to {
                NodeId::Replica(rid) => {
                    let replica = &mut replicas[rid.index as usize];
                    let mut c = ctx(to);
                    replica.on_message(&mut c, from, msg);
                    inflight.extend(sent(&c).into_iter().map(|(dest, m)| (to, dest, m)));
                }
                NodeId::Client(_) => client_msgs.push(msg),
            }
        }

        // Every replica executed the prepare and voted commit; the client got
        // one PrepareResult per replica.
        let results = client_msgs
            .iter()
            .filter(|m| matches!(m, BaselineMsg::PrepareResult { vote, .. } if vote.is_commit()))
            .count();
        assert_eq!(results, 4);
        for r in &replicas {
            assert_eq!(r.stats().requests_executed, 1);
            assert!(r.store().is_prepared(&tx.id()));
        }
    }

    #[test]
    fn batch_timer_flushes_partial_batches() {
        let cfg = BaselineConfig::new(SystemKind::TxHotstuff).with_batch_size(8);
        let mut leader = BaselineReplica::new(
            ReplicaId::new(ShardId(0), 0),
            cfg,
            [(Key::new("x"), Value::from_u64(0))],
        );
        let mut c = ctx(NodeId::Replica(leader.id()));
        leader.handle_submit(&mut c, client(), ShardRequest::Prepare { tx: write_tx(10) });
        // Not enough requests for a batch: only a timer was armed.
        assert!(sent(&c).is_empty());
        let mut c2 = ctx(NodeId::Replica(leader.id()));
        leader.on_message(
            &mut c2,
            NodeId::Replica(leader.id()),
            BaselineMsg::BatchTimer,
        );
        let proposals = sent(&c2)
            .iter()
            .filter(|(_, m)| matches!(m, BaselineMsg::OrderPhase { phase: 0, .. }))
            .count();
        assert_eq!(proposals, 3, "phase-0 proposal to each follower");
    }
}
