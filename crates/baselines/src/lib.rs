//! # basil-baselines
//!
//! The baseline systems the Basil paper compares against (Section 6,
//! *Baselines*), rebuilt on the same simulator and workloads:
//!
//! * **TAPIR-style** ([`profile::SystemKind::Tapir`]) — a non-Byzantine
//!   distributed database that integrates replication with cross-shard
//!   coordination: `2f + 1` replicas per shard, no signatures, OCC
//!   validation executed directly on message receipt, single-round-trip
//!   prepares in the common case.
//! * **TxHotstuff** ([`profile::SystemKind::TxHotstuff`]) — a transaction
//!   layer (2PC + OCC) built over a leader-based, chained-HotStuff-style
//!   ordering engine per shard (`3f + 1` replicas, four leader/replica
//!   voting rounds before a batch is ordered, so a Prepare result reaches
//!   the client after roughly nine message delays, as the paper reports).
//! * **TxBFT-SMaRt** ([`profile::SystemKind::TxBftSmart`]) — the same
//!   transaction layer over a PBFT-style engine (`3f + 1` replicas, two
//!   voting rounds, roughly five message delays per ordered request).
//!
//! ## Fidelity note (also recorded in DESIGN.md)
//!
//! The baselines reproduce the *performance structure* the paper measures —
//! message patterns, ordering latency, batching, quorum sizes, OCC
//! serializability checks, and cryptographic CPU cost (charged through
//! [`basil_crypto::CostModel`]) — but do not carry real signature objects:
//! the paper evaluates the baselines only in fault-free executions, so their
//! Byzantine-attack handling is never exercised.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod messages;
pub mod profile;
pub mod replica;

pub use client::{BaselineClient, BaselineClientStats};
pub use messages::BaselineMsg;
pub use profile::{BaselineConfig, SystemKind};
pub use replica::BaselineReplica;
