//! Messages exchanged by the baseline systems.

use basil_common::{Key, Timestamp, TxId, Value};
use basil_store::occ::OccVote;
use basil_store::Transaction;
use std::sync::Arc;

/// A request that must be ordered (BFT baselines) or executed directly
/// (TAPIR) by a shard.
#[derive(Clone, Debug)]
pub enum ShardRequest {
    /// 2PC prepare: validate the transaction's reads and lock its writes.
    Prepare {
        /// The transaction, shared across the per-replica fan-out and the
        /// consensus batches that carry it.
        tx: Arc<Transaction>,
    },
    /// 2PC decision: commit or abort a previously prepared transaction.
    Decide {
        /// The transaction.
        txid: TxId,
        /// True to commit, false to abort.
        commit: bool,
    },
}

impl ShardRequest {
    /// The transaction the request concerns.
    pub fn txid(&self) -> TxId {
        match self {
            ShardRequest::Prepare { tx } => tx.id(),
            ShardRequest::Decide { txid, .. } => *txid,
        }
    }
}

/// Client-side timers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BaselineClientTimer {
    /// A read has not gathered enough replies.
    ReadTimeout {
        /// The outstanding read request.
        req_id: u64,
    },
    /// A prepare has not completed.
    PrepareTimeout {
        /// The transaction being prepared.
        txid: TxId,
    },
    /// A decide has not been acknowledged.
    DecideTimeout {
        /// The transaction being decided.
        txid: TxId,
    },
    /// Retry backoff elapsed.
    RetryBackoff,
}

/// Every message of the baseline systems.
#[derive(Clone, Debug)]
pub enum BaselineMsg {
    /// Client -> replica: read the current committed value of a key.
    Read {
        /// Request identifier echoed in the reply.
        req_id: u64,
        /// Key to read.
        key: Key,
    },
    /// Replica -> client: read reply with the installed version and value.
    ReadReply {
        /// Echo of the request identifier.
        req_id: u64,
        /// Key read.
        key: Key,
        /// Version identifier of the installed value.
        version: Timestamp,
        /// The value.
        value: Value,
    },
    /// Client -> shard (leader for ordered systems, every replica for TAPIR):
    /// submit a request.
    Submit {
        /// The request.
        request: ShardRequest,
    },
    /// Replica -> client: result of an executed prepare.
    PrepareResult {
        /// The transaction.
        txid: TxId,
        /// The replica's OCC vote.
        vote: OccVote,
    },
    /// Replica -> client: acknowledgement of an executed decide.
    DecideAck {
        /// The transaction.
        txid: TxId,
    },
    /// Leader -> replicas: phase `phase` of the ordering protocol for
    /// instance `seq`. The batch payload is carried only in phase 0.
    OrderPhase {
        /// Consensus instance (sequence number).
        seq: u64,
        /// Phase index.
        phase: u32,
        /// The batch being agreed on (only in phase 0).
        batch: Option<Vec<(basil_common::NodeId, ShardRequest)>>,
    },
    /// Replica -> leader: vote for phase `phase` of instance `seq`.
    OrderVote {
        /// Consensus instance.
        seq: u64,
        /// Phase index.
        phase: u32,
    },
    /// Leader -> replicas: instance `seq` is ordered; execute its batch.
    OrderCommit {
        /// Consensus instance.
        seq: u64,
    },
    /// Leader self-message: flush a partially filled batch.
    BatchTimer,
    /// Client self-message timers.
    ClientTimer(BaselineClientTimer),
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::ClientId;
    use basil_store::TransactionBuilder;

    #[test]
    fn shard_request_txid_is_consistent() {
        let mut b = TransactionBuilder::new(Timestamp::from_nanos(5, ClientId(1)));
        b.record_write(Key::new("k"), Value::from_u64(1));
        let tx = b.build_shared();
        let id = tx.id();
        assert_eq!(ShardRequest::Prepare { tx }.txid(), id);
        assert_eq!(
            ShardRequest::Decide {
                txid: id,
                commit: true
            }
            .txid(),
            id
        );
    }
}
