//! # basil-bench
//!
//! The experiment harness that regenerates every figure of the Basil
//! evaluation (Section 6). Each figure has a binary in `src/bin/` that runs
//! the corresponding experiment on the simulator and prints the same series
//! the paper reports, next to the paper's numbers; `EXPERIMENTS.md` records
//! the comparison. Criterion micro-benchmarks for the substrates live in
//! `benches/`.
//!
//! The experiments report throughput at a fixed, saturating offered load
//! (a configurable number of closed-loop clients) rather than sweeping to an
//! exact peak; the *relative* ordering between systems and configurations —
//! which is what the paper's claims are about — is insensitive to the exact
//! client count, and `sweep_peak` is available where a sweep is wanted.
//!
//! ## Figure binaries
//!
//! | binary                | paper figure | experiment                          |
//! |-----------------------|--------------|-------------------------------------|
//! | `fig4_applications`   | Fig. 4       | Basil vs baselines per workload     |
//! | `fig5a_signatures`    | Fig. 5a      | signature-cost ablation             |
//! | `fig5b_read_quorums`  | Fig. 5b      | read-quorum sizing                  |
//! | `fig5c_shards`        | Fig. 5c      | shard scaling                       |
//! | `fig6a_fastpath`      | Fig. 6a      | fast-path ablation                  |
//! | `fig6b_batching`      | Fig. 6b      | reply-batch sizing                  |
//! | `fig7_failures`       | Fig. 7       | Byzantine-client degradation        |
//!
//! ## Micro-benchmarks (`benches/`)
//!
//! `crypto_bench` and `store_bench` cover the substrates; `protocol_bench`
//! covers vote tallying, certificate validation, the fallback view rules,
//! the raw event scheduler (`sim_scheduler/*`), and a full Basil deployment
//! at a high client count (`protocol_cluster/basil_rwu_96clients`);
//! `figures_bench` runs scaled-down figure points. All runs are seeded and
//! deterministic in *simulated* behaviour; only wall-clock timing varies.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod snapshot;

use basil::baseline_harness::{BaselineCluster, BaselineClusterConfig};
use basil::baselines::{BaselineConfig, SystemKind};
use basil::harness::{BasilCluster, ClusterConfig};
use basil::workloads::poisson::PoissonTxGenerator;
use basil::workloads::retwis::RetwisGenerator;
use basil::workloads::smallbank::SmallbankGenerator;
use basil::workloads::tpcc::TpccGenerator;
use basil::workloads::ycsb::YcsbGenerator;
use basil::{BasilConfig, ClientId, Duration, RunReport, RuntimeMode, SystemConfig, TxGenerator};
use basil_core::byzantine::FaultProfile;

/// The workloads used across the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// TPC-C with 20 warehouses.
    Tpcc,
    /// Smallbank, 1M accounts with a 1,000-account hotspot (scaled-down key
    /// space for simulation memory friendliness; hotspot ratio preserved).
    Smallbank,
    /// Retwis with a Zipf 0.75 user distribution.
    Retwis,
    /// YCSB-T uniform (`RW-U`) with the given reads/writes per transaction.
    RwUniform {
        /// Reads per transaction.
        reads: usize,
        /// Writes per transaction.
        writes: usize,
    },
    /// YCSB-T Zipfian 0.9 (`RW-Z`).
    RwZipf {
        /// Reads per transaction.
        reads: usize,
        /// Writes per transaction.
        writes: usize,
    },
    /// Read-only YCSB-T transactions (Figure 5b).
    ReadOnly {
        /// Reads per transaction.
        ops: usize,
    },
}

impl Workload {
    /// Display label.
    pub fn name(&self) -> String {
        match self {
            Workload::Tpcc => "TPCC".into(),
            Workload::Smallbank => "Smallbank".into(),
            Workload::Retwis => "Retwis".into(),
            Workload::RwUniform { reads, writes } => format!("RW-U {reads}r{writes}w"),
            Workload::RwZipf { reads, writes } => format!("RW-Z {reads}r{writes}w"),
            Workload::ReadOnly { ops } => format!("ReadOnly {ops}r"),
        }
    }

    /// Number of keys used by the YCSB variants. The paper uses ten million;
    /// one million keeps simulation memory modest while staying effectively
    /// uncontended for the uniform workload.
    pub const YCSB_KEYS: u64 = 1_000_000;

    /// Builds the per-client generator.
    pub fn generator(&self, client: ClientId, seed: u64) -> Box<dyn TxGenerator> {
        let s = seed.wrapping_add(client.0.wrapping_mul(7919));
        match self {
            Workload::Tpcc => Box::new(TpccGenerator::new(s, 20)),
            Workload::Smallbank => Box::new(SmallbankGenerator::new(s, 1_000_000, 1_000, 0.9)),
            Workload::Retwis => Box::new(RetwisGenerator::paper_config(s, 1_000_000)),
            Workload::RwUniform { reads, writes } => Box::new(YcsbGenerator::rw_uniform(
                s,
                Self::YCSB_KEYS,
                *reads,
                *writes,
            )),
            Workload::RwZipf { reads, writes } => Box::new(YcsbGenerator::rw_zipf(
                s,
                Self::YCSB_KEYS,
                *reads,
                *writes,
                0.9,
            )),
            Workload::ReadOnly { ops } => {
                Box::new(YcsbGenerator::read_only(s, Self::YCSB_KEYS, *ops))
            }
        }
    }
}

/// Parameters of one experiment run.
#[derive(Clone, Debug)]
pub struct RunParams {
    /// Number of closed-loop clients.
    pub clients: u32,
    /// Warmup before measurement starts.
    pub warmup: Duration,
    /// Measurement window.
    pub window: Duration,
    /// Simulation seed.
    pub seed: u64,
    /// Event-loop runtime (serial oracle or thread-sharded parallel).
    /// Simulated results are identical either way; only wall-clock differs.
    pub runtime: RuntimeMode,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            clients: 24,
            warmup: Duration::from_millis(150),
            window: Duration::from_millis(400),
            seed: 42,
            runtime: runtime_from_env(),
        }
    }
}

impl RunParams {
    /// A lighter parameter set used by the Criterion figure benches and smoke
    /// tests.
    pub fn quick() -> Self {
        RunParams {
            clients: 8,
            warmup: Duration::from_millis(50),
            window: Duration::from_millis(150),
            seed: 42,
            runtime: runtime_from_env(),
        }
    }

    /// Overrides the client count.
    pub fn with_clients(mut self, clients: u32) -> Self {
        self.clients = clients;
        self
    }

    /// Overrides the event-loop runtime.
    pub fn with_runtime(mut self, runtime: RuntimeMode) -> Self {
        self.runtime = runtime;
        self
    }
}

/// The runtime selected by the `BASIL_WORKERS` environment variable: unset,
/// empty, or `0` auto-size from the host's cores
/// ([`basil_common::auto_workers`], capped at 8 — a single-core host stays
/// on the serial oracle); `1` forces the serial oracle; `N > 1` means
/// `RuntimeMode::Parallel(N)`. The figure binaries and the default
/// [`RunParams`] honour it, so any experiment can be re-run on either
/// runtime without a rebuild (results are identical by construction — see
/// `tests/parallel_determinism.rs`).
pub fn runtime_from_env() -> RuntimeMode {
    const WORKER_CAP: usize = 8;
    let requested = std::env::var("BASIL_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    match basil_common::resolve_workers(requested, WORKER_CAP) {
        n if n > 1 => RuntimeMode::Parallel(n),
        _ => RuntimeMode::Serial,
    }
}

/// Runs Basil with the given protocol configuration on a workload.
pub fn run_basil(basil: BasilConfig, workload: Workload, params: &RunParams) -> RunReport {
    run_basil_with_faults(basil, workload, params, 0, FaultProfile::honest())
}

/// Runs Basil with some Byzantine clients (Figure 7).
pub fn run_basil_with_faults(
    basil: BasilConfig,
    workload: Workload,
    params: &RunParams,
    byzantine_clients: u32,
    fault: FaultProfile,
) -> RunReport {
    let config = ClusterConfig::basil_default(params.clients)
        .with_basil(basil)
        .with_byzantine_clients(byzantine_clients, fault)
        .with_seed(params.seed)
        .with_runtime(params.runtime);
    let seed = params.seed;
    let mut cluster = BasilCluster::build(config, |client| workload.generator(client, seed));
    cluster.run_measured(params.warmup, params.window)
}

/// Runs Basil under *open-loop* load: every client offers Poisson arrivals
/// at `rate_tps` transactions per second (so the aggregate offered load is
/// `params.clients * rate_tps`), queues up to the configured admission
/// bound, and sheds beyond it. The knee sweeps (`fig_knee`) call this at
/// increasing rates to trace throughput versus latency.
pub fn run_basil_open_loop(
    basil: BasilConfig,
    workload: Workload,
    params: &RunParams,
    rate_tps: f64,
) -> RunReport {
    let config = ClusterConfig::basil_default(params.clients)
        .with_basil(basil)
        .with_seed(params.seed)
        .with_runtime(params.runtime);
    let seed = params.seed;
    let mut cluster = BasilCluster::build(config, move |client| {
        // Distinct arrival-process seed per client so Poisson streams are
        // independent; content seeds stay identical to the closed-loop runs.
        let arrival_seed = seed.wrapping_add(client.0.wrapping_mul(104_729));
        Box::new(PoissonTxGenerator::new(
            workload.generator(client, seed),
            arrival_seed,
            rate_tps,
        ))
    });
    cluster.run_measured(params.warmup, params.window)
}

/// Runs one of the baseline systems on a workload.
pub fn run_baseline(
    kind: SystemKind,
    shards: u32,
    workload: Workload,
    params: &RunParams,
) -> RunReport {
    let batch = match (kind, workload) {
        // The paper's best batch sizes per system and application class.
        (SystemKind::TxHotstuff, Workload::Tpcc) => 4,
        (SystemKind::TxBftSmart, Workload::Tpcc) => 16,
        (SystemKind::TxHotstuff, _) => 16,
        (SystemKind::TxBftSmart, _) => 64,
        (SystemKind::Tapir, _) => 1,
    };
    let config = BaselineClusterConfig::new(
        BaselineConfig::new(kind)
            .with_shards(shards)
            .with_batch_size(batch),
        params.clients,
    )
    .with_seed(params.seed)
    .with_runtime(params.runtime);
    let seed = params.seed;
    let mut cluster = BaselineCluster::build(config, |client| workload.generator(client, seed));
    cluster.run_measured(params.warmup, params.window)
}

/// The default Basil configuration used by the figure experiments: simulated
/// crypto costs, reply batching of 16 (the paper's YCSB/Smallbank setting).
pub fn basil_default(shards: u32) -> BasilConfig {
    BasilConfig::bench(SystemConfig::sharded(shards)).with_batch_size(16)
}

/// [`basil_default`] at an explicit fault tolerance: `f = 2` yields n = 11
/// replicas per shard (the fig5c scale-out extension row).
pub fn basil_with_f(shards: u32, f: u32) -> BasilConfig {
    BasilConfig::bench(SystemConfig::sharded_f(shards, f)).with_batch_size(16)
}

/// The Basil configuration used for TPC-C (the paper uses batch size 4 on the
/// contended workload).
pub fn basil_tpcc() -> BasilConfig {
    BasilConfig::bench(SystemConfig::single_shard_f1()).with_batch_size(4)
}

/// Sweeps the client count and returns the report with the highest
/// throughput (a coarse peak-throughput search).
pub fn sweep_peak(
    client_counts: &[u32],
    mut run: impl FnMut(u32) -> RunReport,
) -> (u32, RunReport) {
    let mut best: Option<(u32, RunReport)> = None;
    for &clients in client_counts {
        let report = run(clients);
        let better = best
            .as_ref()
            .map(|(_, b)| report.throughput_tps > b.throughput_tps)
            .unwrap_or(true);
        if better {
            best = Some((clients, report));
        }
    }
    best.expect("at least one client count")
}

/// Prints an aligned table row by row.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(String::len).unwrap_or(0))
                .chain([h.len()])
                .max()
                .unwrap_or(h.len())
        })
        .collect();
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats throughput for tables.
pub fn tps(report: &RunReport) -> String {
    format!("{:.0}", report.throughput_tps)
}

/// Formats latency for tables.
pub fn lat(report: &RunReport) -> String {
    format!("{:.2}", report.mean_latency_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_basil_run_produces_throughput() {
        let report = run_basil(
            basil_default(1),
            Workload::RwUniform {
                reads: 2,
                writes: 2,
            },
            &RunParams::quick(),
        );
        assert!(report.committed > 0);
        assert!(report.throughput_tps > 0.0);
    }

    #[test]
    fn quick_baseline_run_produces_throughput() {
        let report = run_baseline(
            SystemKind::Tapir,
            1,
            Workload::RwUniform {
                reads: 2,
                writes: 2,
            },
            &RunParams::quick(),
        );
        assert!(report.committed > 0);
    }

    #[test]
    fn sweep_returns_the_best_point() {
        let (clients, best) = sweep_peak(&[1, 2, 3], |c| RunReport {
            window: Duration::from_secs(1),
            committed: c as u64 * 10,
            aborted_attempts: 0,
            throughput_tps: c as f64 * 10.0,
            offered_tps: c as f64 * 10.0,
            shed: 0,
            shed_fraction: 0.0,
            throughput_per_correct_client: 0.0,
            mean_latency_ms: 1.0,
            p50_latency_ms: 1.0,
            p99_latency_ms: 1.0,
            commit_rate: 1.0,
            fast_path_fraction: 1.0,
            fallbacks: 0,
            faulty_fraction: 0.0,
            per_label: Default::default(),
            runtime: basil::RuntimeMode::Serial,
        });
        assert_eq!(clients, 3);
        assert_eq!(best.committed, 30);
    }

    #[test]
    fn workload_names_and_generators() {
        for w in [
            Workload::Tpcc,
            Workload::Smallbank,
            Workload::Retwis,
            Workload::RwUniform {
                reads: 2,
                writes: 2,
            },
            Workload::RwZipf {
                reads: 2,
                writes: 2,
            },
            Workload::ReadOnly { ops: 24 },
        ] {
            assert!(!w.name().is_empty());
            let mut g = w.generator(ClientId(1), 7);
            assert!(g.next_tx().is_some());
        }
    }
}
