//! Parsing and diffing of the criterion shim's `BENCH_<bin>.json` files.
//!
//! Every benchmark binary serializes its results when `BASIL_BENCH_JSON`
//! names a directory (see the workspace `criterion` shim). A canonical set
//! of those snapshots is committed under `bench/baseline/`, which turns the
//! repository's perf trajectory into data: the `bench_diff` binary loads
//! the committed baseline and a freshly generated directory, matches
//! benchmarks label-wise, and flags deltas beyond a noise band. CI runs it
//! as a non-blocking report step; locally it is a one-command regression
//! check after a perf-sensitive change.
//!
//! The parser is hand-rolled for the shim's fixed output shape (the
//! workspace has no serde): a flat object with `"bin"`, `"mode"`, and a
//! `"results"` map of `label -> ns_per_iter | null` (null for untimed
//! `--test` passes).

use std::collections::BTreeMap;
use std::path::Path;

/// One parsed `BENCH_<bin>.json` file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSnapshot {
    /// Benchmark binary name (`crypto_bench`, `store_bench`, ...).
    pub bin: String,
    /// `"timed"` or `"test"` (untimed smoke pass).
    pub mode: String,
    /// `label -> mean ns/iter` in file order; `None` for untimed entries.
    pub results: Vec<(String, Option<f64>)>,
}

/// Reads one quoted JSON string from the start of `s`, returning the
/// unescaped contents and the remainder after the closing quote.
fn parse_quoted(s: &str) -> Option<(String, &str)> {
    let rest = s.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '\\' => {
                let (_, escaped) = chars.next()?;
                out.push(escaped);
            }
            '"' => return Some((out, &rest[i + 1..])),
            _ => out.push(c),
        }
    }
    None
}

/// Parses the body of a `BENCH_<bin>.json` file written by the criterion
/// shim. Tolerates whitespace and ordering but not arbitrary JSON — the
/// shape is the shim's and nothing else writes these files.
pub fn parse_snapshot(body: &str) -> Result<BenchSnapshot, String> {
    let mut bin = None;
    let mut mode = None;
    let mut results = Vec::new();
    let mut in_results = false;
    for raw in body.lines() {
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty() || line == "{" || line == "}" {
            if in_results && line == "}" {
                in_results = false;
            }
            continue;
        }
        let Some((key, rest)) = parse_quoted(line) else {
            continue;
        };
        let value = rest
            .trim_start()
            .strip_prefix(':')
            .ok_or_else(|| format!("missing ':' after key {key:?}"))?
            .trim();
        if in_results {
            let ns = if value == "null" {
                None
            } else {
                Some(
                    value
                        .parse::<f64>()
                        .map_err(|e| format!("bad ns value for {key:?}: {e}"))?,
                )
            };
            results.push((key, ns));
        } else {
            match key.as_str() {
                "bin" => bin = parse_quoted(value).map(|(s, _)| s),
                "mode" => mode = parse_quoted(value).map(|(s, _)| s),
                "results" => in_results = true,
                other => return Err(format!("unexpected top-level key {other:?}")),
            }
        }
    }
    Ok(BenchSnapshot {
        bin: bin.ok_or("missing \"bin\"")?,
        mode: mode.ok_or("missing \"mode\"")?,
        results,
    })
}

/// Loads every `BENCH_*.json` under `dir`, sorted by file name so runs are
/// reproducible regardless of directory iteration order.
pub fn load_snapshot_dir(dir: &Path) -> Result<Vec<BenchSnapshot>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut files: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .unwrap_or(false)
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no BENCH_*.json files in {}", dir.display()));
    }
    files
        .into_iter()
        .map(|p| {
            let body = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            parse_snapshot(&body).map_err(|e| format!("{}: {e}", p.display()))
        })
        .collect()
}

/// Outcome of comparing one benchmark label between baseline and current.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Current is slower than baseline by more than the noise band.
    Regression,
    /// Current is faster than baseline by more than the noise band.
    Improvement,
    /// Delta within the noise band.
    Within,
    /// Present (timed) only in the current run.
    New,
    /// Present (timed) in the baseline but absent from the current run.
    Missing,
    /// Present in both but untimed in the current run (`--test` mode).
    Untimed,
}

/// One row of a snapshot comparison.
#[derive(Clone, Debug)]
pub struct DiffLine {
    /// Benchmark binary the label belongs to.
    pub bin: String,
    /// Benchmark label (`group/case`).
    pub label: String,
    /// Baseline mean ns/iter, if the baseline entry was timed.
    pub baseline_ns: Option<f64>,
    /// Current mean ns/iter, if the current entry was timed.
    pub current_ns: Option<f64>,
    /// `(current - baseline) / baseline`, when both sides are timed.
    pub delta: Option<f64>,
    /// Classification under the configured noise band.
    pub verdict: Verdict,
}

/// Compares two snapshot sets label-wise. `noise` is the fractional band
/// (0.30 = ±30%) within which a delta is attributed to machine noise — the
/// shim is a single-sample wall-clock harness, so the band must be generous.
pub fn diff_snapshots(
    baseline: &[BenchSnapshot],
    current: &[BenchSnapshot],
    noise: f64,
) -> Vec<DiffLine> {
    let index = |snaps: &[BenchSnapshot]| -> BTreeMap<(String, String), Option<f64>> {
        snaps
            .iter()
            .flat_map(|s| {
                s.results
                    .iter()
                    .map(move |(label, ns)| ((s.bin.clone(), label.clone()), *ns))
            })
            .collect()
    };
    let base = index(baseline);
    let cur = index(current);
    let mut lines = Vec::new();
    for ((bin, label), base_ns) in &base {
        let (current_ns, verdict, delta) = match (base_ns, cur.get(&(bin.clone(), label.clone()))) {
            (_, None) => (None, Verdict::Missing, None),
            (_, Some(None)) => (None, Verdict::Untimed, None),
            (None, Some(&Some(ns))) => (Some(ns), Verdict::New, None),
            (Some(base_ns), Some(&Some(ns))) => {
                let delta = (ns - base_ns) / base_ns;
                let verdict = if delta > noise {
                    Verdict::Regression
                } else if delta < -noise {
                    Verdict::Improvement
                } else {
                    Verdict::Within
                };
                (Some(ns), verdict, Some(delta))
            }
        };
        lines.push(DiffLine {
            bin: bin.clone(),
            label: label.clone(),
            baseline_ns: *base_ns,
            current_ns,
            delta,
            verdict,
        });
    }
    for ((bin, label), cur_ns) in &cur {
        if base.contains_key(&(bin.clone(), label.clone())) {
            continue;
        }
        if let Some(ns) = cur_ns {
            lines.push(DiffLine {
                bin: bin.clone(),
                label: label.clone(),
                baseline_ns: None,
                current_ns: Some(*ns),
                delta: None,
                verdict: Verdict::New,
            });
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "bin": "store_bench",
  "mode": "timed",
  "results": {
    "store_contention/prepare_zipf_hot": 51000.5,
    "store_contention/prepare_stale_writers": 103188.4,
    "store/gc_sweep": null
  }
}
"#;

    #[test]
    fn parses_the_shim_format() {
        let snap = parse_snapshot(SAMPLE).expect("parses");
        assert_eq!(snap.bin, "store_bench");
        assert_eq!(snap.mode, "timed");
        assert_eq!(snap.results.len(), 3);
        assert_eq!(
            snap.results[0],
            (
                "store_contention/prepare_zipf_hot".to_string(),
                Some(51000.5)
            )
        );
        assert_eq!(snap.results[2], ("store/gc_sweep".to_string(), None));
    }

    #[test]
    fn parses_escaped_labels() {
        let body = "{\n  \"bin\": \"b\",\n  \"mode\": \"test\",\n  \"results\": {\n    \"case \\\"quoted\\\"\": null\n  }\n}\n";
        let snap = parse_snapshot(body).expect("parses");
        assert_eq!(snap.results[0].0, "case \"quoted\"");
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(parse_snapshot("{\n  \"results\": {\n  }\n}\n").is_err());
    }

    fn snap(bin: &str, results: &[(&str, Option<f64>)]) -> BenchSnapshot {
        BenchSnapshot {
            bin: bin.to_string(),
            mode: "timed".to_string(),
            results: results.iter().map(|(l, ns)| (l.to_string(), *ns)).collect(),
        }
    }

    #[test]
    fn diff_classifies_against_the_noise_band() {
        let baseline = [snap(
            "b",
            &[
                ("g/same", Some(100.0)),
                ("g/slower", Some(100.0)),
                ("g/faster", Some(100.0)),
                ("g/gone", Some(100.0)),
                ("g/now_untimed", Some(100.0)),
                ("g/was_untimed", None),
            ],
        )];
        let current = [snap(
            "b",
            &[
                ("g/same", Some(110.0)),
                ("g/slower", Some(140.0)),
                ("g/faster", Some(60.0)),
                ("g/now_untimed", None),
                ("g/was_untimed", Some(50.0)),
                ("g/brand_new", Some(10.0)),
            ],
        )];
        let lines = diff_snapshots(&baseline, &current, 0.30);
        let verdict = |label: &str| {
            lines
                .iter()
                .find(|l| l.label == label)
                .map(|l| l.verdict)
                .expect("line present")
        };
        assert_eq!(verdict("g/same"), Verdict::Within);
        assert_eq!(verdict("g/slower"), Verdict::Regression);
        assert_eq!(verdict("g/faster"), Verdict::Improvement);
        assert_eq!(verdict("g/gone"), Verdict::Missing);
        assert_eq!(verdict("g/now_untimed"), Verdict::Untimed);
        assert_eq!(verdict("g/was_untimed"), Verdict::New);
        assert_eq!(verdict("g/brand_new"), Verdict::New);
        let slower = lines.iter().find(|l| l.label == "g/slower").unwrap();
        assert!((slower.delta.unwrap() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn labels_only_collide_within_the_same_bin() {
        let baseline = [snap("a", &[("g/case", Some(100.0))])];
        let current = [snap("b", &[("g/case", Some(100.0))])];
        let lines = diff_snapshots(&baseline, &current, 0.30);
        assert_eq!(lines.len(), 2);
        assert!(lines
            .iter()
            .any(|l| l.bin == "a" && l.verdict == Verdict::Missing));
        assert!(lines
            .iter()
            .any(|l| l.bin == "b" && l.verdict == Verdict::New));
    }

    #[test]
    fn snapshot_roundtrips_through_a_directory() {
        let dir = std::env::temp_dir().join(format!("bench-diff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("BENCH_store_bench.json"), SAMPLE).expect("write");
        std::fs::write(dir.join("ignored.txt"), "not a snapshot").expect("write");
        let snaps = load_snapshot_dir(&dir).expect("loads");
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].bin, "store_bench");
        std::fs::remove_dir_all(&dir).ok();
    }
}
