//! Figure 7: Basil under Byzantine client failures. For each attack strategy
//! (stall-early, stall-late, forced equivocation, realistic equivocation) and
//! a growing fraction of Byzantine clients, reports the throughput of correct
//! clients normalized per correct client, on RW-U (Figure 7a) and RW-Z
//! (Figure 7b). The paper's headline: with 30% Byzantine clients, correct
//! client throughput drops by less than 25% in the worst realistic case.

use basil_bench::{basil_default, print_table, run_basil_with_faults, RunParams, Workload};
use basil_core::byzantine::{ClientStrategy, FaultProfile};

fn main() {
    let p = if std::env::var("BASIL_BENCH_QUICK").is_ok() {
        RunParams::quick()
    } else {
        RunParams::default()
    };
    let fractions = [0.0f64, 0.1, 0.2, 0.3, 0.4];
    let strategies = [
        ("stall-early", ClientStrategy::StallEarly),
        ("stall-late", ClientStrategy::StallLate),
        ("equiv-forced", ClientStrategy::EquivForced),
        ("equiv-real", ClientStrategy::EquivReal),
    ];
    for (fig, workload) in [
        (
            "Figure 7a (RW-U)",
            Workload::RwUniform {
                reads: 2,
                writes: 2,
            },
        ),
        (
            "Figure 7b (RW-Z)",
            Workload::RwZipf {
                reads: 2,
                writes: 2,
            },
        ),
    ] {
        let mut rows = Vec::new();
        for (name, strategy) in strategies {
            let mut row = vec![name.to_string()];
            let mut baseline = None;
            for fraction in fractions {
                let byz_clients = ((p.clients as f64) * fraction).round() as u32;
                let mut cfg = basil_default(1);
                if strategy == ClientStrategy::EquivForced {
                    cfg.relax_st2_validation = true;
                }
                let report = run_basil_with_faults(
                    cfg,
                    workload,
                    &p,
                    byz_clients,
                    FaultProfile {
                        strategy,
                        faulty_fraction: 1.0,
                    },
                );
                let per_client = report.throughput_per_correct_client;
                if baseline.is_none() {
                    baseline = Some(per_client.max(1e-9));
                }
                row.push(format!(
                    "{:.0} ({:+.0}%)",
                    per_client,
                    (per_client / baseline.expect("set") - 1.0) * 100.0
                ));
                eprintln!(
                    "[fig7] {} {} {:.0}% byz: {:.0} tx/s/correct-client, fallbacks {}",
                    fig,
                    name,
                    fraction * 100.0,
                    per_client,
                    report.fallbacks
                );
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "{fig}: throughput per correct client (tx/s) vs fraction of Byzantine clients"
            ),
            &["strategy", "0%", "10%", "20%", "30%", "40%"],
            &rows,
        );
    }
    println!("\nPaper shape: graceful, near-linear degradation; <25% drop at 30% Byzantine for realistic strategies; forced equivocation worst on the contended workload.");
}
