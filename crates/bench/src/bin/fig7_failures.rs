//! Figure 7: Basil under Byzantine client failures. For each attack strategy
//! (stall-early, stall-late, forced equivocation, realistic equivocation) and
//! a growing fraction of Byzantine clients, reports the throughput of correct
//! clients normalized per correct client, on RW-U (Figure 7a) and RW-Z
//! (Figure 7b). The paper's headline: with 30% Byzantine clients, correct
//! client throughput drops by less than 25% in the worst realistic case.
//!
//! Each cell is a declarative [`ScenarioSpec`] executed by the scenario
//! runner — the same path the failure tests and the schedule fuzzer use —
//! so the figure, the regression corpus, and the fuzzer all agree on what
//! "run Basil with Byzantine clients" means.

use basil_bench::{print_table, RunParams};
use basil_core::byzantine::ClientStrategy;
use basil_scenario::runner::run_basil_spec;
use basil_scenario::spec::{FaultBudget, ScenarioSpec, WorkloadSpec};

/// The figure's two workloads, expressed as scenario workload specs (same
/// key space and skew as the bench harness's `Workload::Rw*`).
const YCSB_KEYS: u64 = 1_000_000;

fn main() {
    let p = if std::env::var("BASIL_BENCH_QUICK").is_ok() {
        RunParams::quick()
    } else {
        RunParams::default()
    };
    let fractions = [0.0f64, 0.1, 0.2, 0.3, 0.4];
    let strategies = [
        ("stall-early", ClientStrategy::StallEarly),
        ("stall-late", ClientStrategy::StallLate),
        ("equiv-forced", ClientStrategy::EquivForced),
        ("equiv-real", ClientStrategy::EquivReal),
    ];
    for (fig, workload) in [
        (
            "Figure 7a (RW-U)",
            WorkloadSpec::RwUniform {
                reads: 2,
                writes: 2,
                keys: YCSB_KEYS,
            },
        ),
        (
            "Figure 7b (RW-Z)",
            WorkloadSpec::RwZipf {
                reads: 2,
                writes: 2,
                keys: YCSB_KEYS,
                theta: 0.9,
            },
        ),
    ] {
        let mut rows = Vec::new();
        for (name, strategy) in strategies {
            let mut row = vec![name.to_string()];
            let mut baseline = None;
            for fraction in fractions {
                let byz_clients = ((p.clients as f64) * fraction).round() as u32;
                let spec = ScenarioSpec {
                    name: format!("fig7 {name} {:.0}%", fraction * 100.0),
                    seed: p.seed,
                    clients: p.clients,
                    byz_clients,
                    byz_strategy: strategy,
                    byz_fraction: 1.0,
                    f: 1,
                    batch_size: 16,
                    relax_st2: strategy == ClientStrategy::EquivForced,
                    warmup_ms: p.warmup.as_millis(),
                    duration_ms: (p.warmup + p.window).as_millis(),
                    // A figure sweep measures steady-state throughput; no
                    // quiet tail, no fault budget to keep within.
                    tail_ms: 0,
                    budget: FaultBudget {
                        crash: 0,
                        deceit: 0,
                    },
                    workload,
                    faults: vec![],
                    expect: None,
                };
                spec.validate().expect("figure cell spec is well-formed");
                let outcome = run_basil_spec(&spec, p.runtime);
                let per_client = outcome.report.throughput_per_correct_client;
                if baseline.is_none() {
                    baseline = Some(per_client.max(1e-9));
                }
                row.push(format!(
                    "{:.0} ({:+.0}%)",
                    per_client,
                    (per_client / baseline.expect("set") - 1.0) * 100.0
                ));
                eprintln!(
                    "[fig7] {} {} {:.0}% byz: {:.0} tx/s/correct-client, fallbacks {}",
                    fig,
                    name,
                    fraction * 100.0,
                    per_client,
                    outcome.fallbacks
                );
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "{fig}: throughput per correct client (tx/s) vs fraction of Byzantine clients"
            ),
            &["strategy", "0%", "10%", "20%", "30%", "40%"],
            &rows,
        );
    }
    println!("\nPaper shape: graceful, near-linear degradation; <25% drop at 30% Byzantine for realistic strategies; forced equivocation worst on the contended workload.");
}
