//! Figure 5a: the cost of cryptography — Basil vs Basil-NoProofs on the
//! uniform (RW-U) and Zipfian (RW-Z) YCSB-T workloads (2 reads, 2 writes).

use basil_bench::{basil_default, print_table, run_basil, RunParams, Workload};

fn main() {
    let p = if std::env::var("BASIL_BENCH_QUICK").is_ok() {
        RunParams::quick()
    } else {
        RunParams::default()
    };
    let workloads = [
        (
            "RW-U",
            Workload::RwUniform {
                reads: 2,
                writes: 2,
            },
            38_241.0,
            143_880.0,
        ),
        (
            "RW-Z",
            Workload::RwZipf {
                reads: 2,
                writes: 2,
            },
            4_777.0,
            21_978.0,
        ),
    ];
    let mut rows = Vec::new();
    for (name, workload, paper_basil, paper_noproofs) in workloads {
        let with_sigs = run_basil(basil_default(1), workload, &p);
        let no_proofs = run_basil(basil_default(1).without_proofs(), workload, &p);
        let ratio = no_proofs.throughput_tps / with_sigs.throughput_tps.max(1.0);
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", with_sigs.throughput_tps),
            format!("{:.0}", no_proofs.throughput_tps),
            format!("{ratio:.1}x"),
            format!("{:.1}x", paper_noproofs / paper_basil),
        ]);
        eprintln!(
            "[fig5a] {name}: Basil {:.0} tx/s ({:.2} ms), NoProofs {:.0} tx/s ({:.2} ms)",
            with_sigs.throughput_tps,
            with_sigs.mean_latency_ms,
            no_proofs.throughput_tps,
            no_proofs.mean_latency_ms
        );
    }
    print_table(
        "Figure 5a: impact of signatures (peak throughput, tx/s)",
        &[
            "workload",
            "Basil",
            "Basil-NoProofs",
            "speedup",
            "paper speedup",
        ],
        &rows,
    );
}
