//! Figure 6b: reply-batch size sweep (1 to 32) on RW-U and RW-Z. The paper
//! reports RW-U peaking around a batch of 16 (~4x over unbatched) and RW-Z
//! peaking at 4 (~1.4x) before batching-induced lock-step hurts it.

use basil_bench::{basil_default, print_table, run_basil, RunParams, Workload};

fn main() {
    let p = if std::env::var("BASIL_BENCH_QUICK").is_ok() {
        RunParams::quick()
    } else {
        RunParams::default()
    };
    let batches = [1u32, 2, 4, 8, 16, 32, 64];
    let workloads = [
        (
            "RW-U",
            Workload::RwUniform {
                reads: 2,
                writes: 2,
            },
        ),
        (
            "RW-Z",
            Workload::RwZipf {
                reads: 2,
                writes: 2,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, workload) in workloads {
        let mut row = vec![name.to_string()];
        let mut first = None;
        for batch in batches {
            let report = run_basil(basil_default(1).with_batch_size(batch), workload, &p);
            if first.is_none() {
                first = Some(report.throughput_tps);
            }
            row.push(format!("{:.0}", report.throughput_tps));
            eprintln!(
                "[fig6b] {name} b={batch}: {:.0} tx/s ({:.2} ms)",
                report.throughput_tps, report.mean_latency_ms
            );
        }
        rows.push(row);
    }
    print_table(
        "Figure 6b: throughput (tx/s) vs reply batch size",
        &[
            "workload", "b=1", "b=2", "b=4", "b=8", "b=16", "b=32", "b=64",
        ],
        &rows,
    );
    println!("\nPaper shape: RW-U rises ~4x and peaks at b=16; RW-Z peaks around b=4 (~1.4x) then degrades.");
}
