//! Figure 5b: the cost of Byzantine-independent reads — throughput and
//! latency of a read-only workload (24 operations per transaction, batch 16)
//! as the read quorum grows from one replica to `f+1` and `2f+1`.

use basil::ReadQuorum;
use basil_bench::{basil_default, print_table, run_basil, RunParams, Workload};

fn main() {
    let p = if std::env::var("BASIL_BENCH_QUICK").is_ok() {
        RunParams::quick()
    } else {
        RunParams::default()
    };
    let quorums = [
        ("one read", ReadQuorum::One),
        ("f+1 reads", ReadQuorum::FPlusOne),
        ("2f+1 reads", ReadQuorum::TwoFPlusOne),
    ];
    let mut rows = Vec::new();
    let mut baseline_tput = None;
    for (name, quorum) in quorums {
        let mut cfg = basil_default(1);
        cfg.system.read_quorum = quorum;
        let report = run_basil(cfg, Workload::ReadOnly { ops: 24 }, &p);
        let relative = baseline_tput
            .map(|b: f64| format!("{:+.0}%", (report.throughput_tps / b - 1.0) * 100.0))
            .unwrap_or_else(|| "baseline".to_string());
        if baseline_tput.is_none() {
            baseline_tput = Some(report.throughput_tps);
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", report.throughput_tps),
            format!("{:.2}", report.mean_latency_ms),
            relative,
        ]);
        eprintln!(
            "[fig5b] {name}: {:.0} tx/s, {:.2} ms",
            report.throughput_tps, report.mean_latency_ms
        );
    }
    print_table(
        "Figure 5b: read quorum size (read-only, 24 ops/txn) — paper: -20% at f+1, further -16% at 2f+1",
        &["quorum", "tx/s", "latency ms", "vs one read"],
        &rows,
    );
}
