//! Figure 6a: the benefit of the single-round-trip fast path — Basil with and
//! without the fast path (Basil-NoFP) on RW-U and RW-Z. The paper reports
//! +19% on the uniform workload and +49% on the contended Zipfian workload.

use basil_bench::{basil_default, print_table, run_basil, RunParams, Workload};

fn main() {
    let p = if std::env::var("BASIL_BENCH_QUICK").is_ok() {
        RunParams::quick()
    } else {
        RunParams::default()
    };
    let workloads = [
        (
            "RW-U",
            Workload::RwUniform {
                reads: 2,
                writes: 2,
            },
            32_027.0,
            38_241.0,
        ),
        (
            "RW-Z",
            Workload::RwZipf {
                reads: 2,
                writes: 2,
            },
            2_454.0,
            4_777.0,
        ),
    ];
    let mut rows = Vec::new();
    for (name, workload, paper_nofp, paper_fp) in workloads {
        let no_fp = run_basil(basil_default(1).without_fast_path(), workload, &p);
        let fp = run_basil(basil_default(1), workload, &p);
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", no_fp.throughput_tps),
            format!("{:.0}", fp.throughput_tps),
            format!(
                "{:+.0}%",
                (fp.throughput_tps / no_fp.throughput_tps.max(1.0) - 1.0) * 100.0
            ),
            format!("{:+.0}%", (paper_fp / paper_nofp - 1.0) * 100.0),
        ]);
        eprintln!(
            "[fig6a] {name}: NoFP {:.0} tx/s ({:.2} ms, fast fraction {:.2}), FP {:.0} tx/s ({:.2} ms, fast fraction {:.2})",
            no_fp.throughput_tps,
            no_fp.mean_latency_ms,
            no_fp.fast_path_fraction,
            fp.throughput_tps,
            fp.mean_latency_ms,
            fp.fast_path_fraction
        );
    }
    print_table(
        "Figure 6a: fast path ablation",
        &[
            "workload",
            "Basil-NoFP tx/s",
            "Basil tx/s",
            "gain",
            "paper gain",
        ],
        &rows,
    );
}
