//! Figure 5c: scaling the number of shards on the CPU-bound RW-U workload
//! with three reads and three writes per transaction, for Basil and
//! Basil-NoProofs. The paper reports the 1 -> 3 shard scale-up (1.3x with
//! proofs, 1.9x without: cross-shard certificates cost a signature per
//! shard); this reproduction extends the sweep to eight shards, which the
//! paper's testbed never reached, and adds an `f = 2` (n = 11 replicas per
//! shard) row probing the proofs-bound-scale-out claim at the larger
//! deployment the schedule fuzzer already exercises: quorum certificates
//! grow from 4 to 7 signatures, so the proofs gap should widen.
//!
//! The offered load scales with the deployment: `clients_per_shard`
//! closed-loop clients per shard (default 24, the paper's saturating load
//! per shard), so larger deployments are measured at saturation rather
//! than at a fixed, increasingly idle client count. `BASIL_WORKERS=N`
//! runs the sweep on the thread-sharded parallel runtime — simulated
//! results are identical (see `tests/parallel_determinism.rs`); only wall
//! time changes. `BASIL_FIG5C_SHARDS` overrides the f = 1 sweep width and
//! `BASIL_FIG5C_F2_SHARDS` the shard count of the f = 2 row (0 skips it).

use basil_bench::{basil_default, basil_with_f, print_table, run_basil, RunParams, Workload};

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let quick = std::env::var("BASIL_BENCH_QUICK").is_ok();
    let base = if quick {
        RunParams::quick()
    } else {
        RunParams::default()
    };
    let max_shards = env_u32("BASIL_FIG5C_SHARDS", if quick { 3 } else { 8 }).max(1);
    let f2_shards = env_u32("BASIL_FIG5C_F2_SHARDS", if quick { 1 } else { 3 });
    let clients_per_shard = base.clients;
    let workload = Workload::RwUniform {
        reads: 3,
        writes: 3,
    };
    let mut rows = Vec::new();
    let mut basil_at = Vec::new();
    let mut noproofs_at = Vec::new();
    for shards in 1..=max_shards {
        let p = base.clone().with_clients(clients_per_shard * shards);
        let with_sigs = run_basil(basil_default(shards), workload, &p);
        let no_proofs = run_basil(basil_default(shards).without_proofs(), workload, &p);
        basil_at.push(with_sigs.throughput_tps);
        noproofs_at.push(no_proofs.throughput_tps);
        rows.push(vec![
            shards.to_string(),
            "1".to_string(),
            p.clients.to_string(),
            format!("{:.0}", with_sigs.throughput_tps),
            format!("{:.1}x", with_sigs.throughput_tps / basil_at[0].max(1.0)),
            format!("{:.0}", no_proofs.throughput_tps),
            format!("{:.1}x", no_proofs.throughput_tps / noproofs_at[0].max(1.0)),
        ]);
        eprintln!(
            "[fig5c] {shards} shard(s) f=1, {} clients ({}): Basil {:.0} tx/s, NoProofs {:.0} tx/s",
            p.clients,
            p.runtime.label(),
            with_sigs.throughput_tps,
            no_proofs.throughput_tps
        );
    }
    // The f = 2 row: n = 11 replicas per shard, commit quorum 7. Compared
    // against the f = 1 deployment of the same shard count it isolates what
    // larger quorum certificates cost with and without proofs.
    let mut f2 = None;
    if f2_shards > 0 {
        let p = base.clone().with_clients(clients_per_shard * f2_shards);
        let with_sigs = run_basil(basil_with_f(f2_shards, 2), workload, &p);
        let no_proofs = run_basil(basil_with_f(f2_shards, 2).without_proofs(), workload, &p);
        rows.push(vec![
            f2_shards.to_string(),
            "2".to_string(),
            p.clients.to_string(),
            format!("{:.0}", with_sigs.throughput_tps),
            format!("{:.1}x", with_sigs.throughput_tps / basil_at[0].max(1.0)),
            format!("{:.0}", no_proofs.throughput_tps),
            format!("{:.1}x", no_proofs.throughput_tps / noproofs_at[0].max(1.0)),
        ]);
        eprintln!(
            "[fig5c] {f2_shards} shard(s) f=2 (n=11), {} clients ({}): Basil {:.0} tx/s, NoProofs {:.0} tx/s",
            p.clients,
            p.runtime.label(),
            with_sigs.throughput_tps,
            no_proofs.throughput_tps
        );
        f2 = Some((with_sigs.throughput_tps, no_proofs.throughput_tps));
    }
    print_table(
        "Figure 5c: shard scaling (RW-U, 3 reads / 3 writes, saturating load)",
        &[
            "shards",
            "f",
            "clients",
            "Basil tx/s",
            "vs 1 (f=1)",
            "NoProofs tx/s",
            "vs 1 (f=1)",
        ],
        &rows,
    );
    let idx3 = (3.min(max_shards) - 1) as usize;
    println!(
        "\nScale-up 1 -> 3 shards: Basil {:.1}x (paper 1.3x), NoProofs {:.1}x (paper 1.9x)",
        basil_at[idx3] / basil_at[0].max(1.0),
        noproofs_at[idx3] / noproofs_at[0].max(1.0)
    );
    if max_shards > 3 {
        println!(
            "Scale-up 1 -> {max_shards} shards (beyond the paper): Basil {:.1}x, NoProofs {:.1}x",
            basil_at[(max_shards - 1) as usize] / basil_at[0].max(1.0),
            noproofs_at[(max_shards - 1) as usize] / noproofs_at[0].max(1.0)
        );
    }
    if let Some((b2, np2)) = f2 {
        if (f2_shards as usize) <= basil_at.len() {
            let i = (f2_shards - 1) as usize;
            println!(
                "f=1 -> f=2 at {f2_shards} shard(s): Basil {:.0} -> {:.0} tx/s ({:.2}x), \
                 NoProofs {:.0} -> {:.0} tx/s ({:.2}x)",
                basil_at[i],
                b2,
                b2 / basil_at[i].max(1.0),
                noproofs_at[i],
                np2,
                np2 / noproofs_at[i].max(1.0)
            );
        }
    }
}
