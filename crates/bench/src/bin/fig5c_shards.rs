//! Figure 5c: scaling the number of shards (1 to 3) on the CPU-bound RW-U
//! workload with three reads and three writes per transaction, for Basil and
//! Basil-NoProofs. The paper reports a 1.9x scale-up without proofs but only
//! 1.3x with them (cross-shard certificates cost a signature per shard).

use basil_bench::{basil_default, print_table, run_basil, RunParams, Workload};

fn main() {
    let p = if std::env::var("BASIL_BENCH_QUICK").is_ok() {
        RunParams::quick()
    } else {
        RunParams::default()
    };
    let workload = Workload::RwUniform {
        reads: 3,
        writes: 3,
    };
    let mut rows = Vec::new();
    let mut basil_at = Vec::new();
    let mut noproofs_at = Vec::new();
    for shards in 1..=3u32 {
        let with_sigs = run_basil(basil_default(shards), workload, &p);
        let no_proofs = run_basil(basil_default(shards).without_proofs(), workload, &p);
        basil_at.push(with_sigs.throughput_tps);
        noproofs_at.push(no_proofs.throughput_tps);
        rows.push(vec![
            shards.to_string(),
            format!("{:.0}", with_sigs.throughput_tps),
            format!("{:.0}", no_proofs.throughput_tps),
        ]);
        eprintln!(
            "[fig5c] {shards} shard(s): Basil {:.0} tx/s, NoProofs {:.0} tx/s",
            with_sigs.throughput_tps, no_proofs.throughput_tps
        );
    }
    print_table(
        "Figure 5c: shard scaling (RW-U, 3 reads / 3 writes)",
        &["shards", "Basil tx/s", "NoProofs tx/s"],
        &rows,
    );
    println!(
        "\nScale-up 1 -> 3 shards: Basil {:.1}x (paper 1.3x), NoProofs {:.1}x (paper 1.9x)",
        basil_at[2] / basil_at[0].max(1.0),
        noproofs_at[2] / noproofs_at[0].max(1.0)
    );
}
