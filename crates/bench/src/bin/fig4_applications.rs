//! Figure 4: application-level performance of Basil vs TAPIR, TxHotstuff and
//! TxBFT-SMaRt on TPC-C, Smallbank, and Retwis (throughput and mean latency).

use basil::baselines::SystemKind;
use basil_bench::{
    basil_default, basil_tpcc, lat, print_table, run_baseline, run_basil, tps, RunParams, Workload,
};

fn params() -> RunParams {
    if std::env::var("BASIL_BENCH_QUICK").is_ok() {
        RunParams::quick()
    } else {
        RunParams::default()
    }
}

fn main() {
    let workloads = [Workload::Tpcc, Workload::Smallbank, Workload::Retwis];
    // Paper reference numbers (Figure 4a throughput in tx/s, 4b latency ms).
    let paper_tput = [
        ("TAPIR", [19_801, 61_445, 43_286]),
        ("Basil", [4_862, 23_536, 24_549]),
        ("TxHotstuff", [924, 6_401, 5_159]),
        ("TxBFT-SMaRt", [1_294, 8_746, 6_253]),
    ];
    let paper_lat = [
        ("TAPIR", [7.3, 2.3, 2.0]),
        ("Basil", [30.7, 11.7, 10.0]),
        ("TxHotstuff", [73.1, 42.6, 48.9]),
        ("TxBFT-SMaRt", [59.4, 18.7, 23.3]),
    ];

    let p = params();
    let mut tput_rows = Vec::new();
    let mut lat_rows = Vec::new();
    let mut measured: Vec<Vec<f64>> = Vec::new();

    for (system_idx, system) in ["TAPIR", "Basil", "TxHotstuff", "TxBFT-SMaRt"]
        .iter()
        .enumerate()
    {
        let mut tput_row = vec![system.to_string()];
        let mut lat_row = vec![system.to_string()];
        let mut tputs = Vec::new();
        for (w_idx, workload) in workloads.iter().enumerate() {
            let report = match *system {
                "Basil" => {
                    let cfg = if *workload == Workload::Tpcc {
                        basil_tpcc()
                    } else {
                        basil_default(1)
                    };
                    run_basil(cfg, *workload, &p)
                }
                "TAPIR" => run_baseline(SystemKind::Tapir, 1, *workload, &p),
                "TxHotstuff" => run_baseline(SystemKind::TxHotstuff, 1, *workload, &p),
                _ => run_baseline(SystemKind::TxBftSmart, 1, *workload, &p),
            };
            tput_row.push(tps(&report));
            tput_row.push(paper_tput[system_idx].1[w_idx].to_string());
            lat_row.push(lat(&report));
            lat_row.push(format!("{:.1}", paper_lat[system_idx].1[w_idx]));
            tputs.push(report.throughput_tps);
            eprintln!(
                "[fig4] {} / {}: {:.0} tx/s, {:.2} ms, commit rate {:.2}",
                system,
                workload.name(),
                report.throughput_tps,
                report.mean_latency_ms,
                report.commit_rate
            );
        }
        measured.push(tputs);
        tput_rows.push(tput_row);
        lat_rows.push(lat_row);
    }

    print_table(
        "Figure 4a: peak throughput (tx/s) — measured vs paper",
        &[
            "system",
            "TPCC",
            "paper",
            "Smallbank",
            "paper",
            "Retwis",
            "paper",
        ],
        &tput_rows,
    );
    print_table(
        "Figure 4b: mean latency (ms) — measured vs paper",
        &[
            "system",
            "TPCC",
            "paper",
            "Smallbank",
            "paper",
            "Retwis",
            "paper",
        ],
        &lat_rows,
    );

    // Shape summary: the paper's headline ratios.
    let (tapir, basil, hotstuff, bftsmart) =
        (&measured[0], &measured[1], &measured[2], &measured[3]);
    println!("\nShape checks (per workload: TPCC, Smallbank, Retwis):");
    for i in 0..3 {
        println!(
            "  {:10} Basil/TxHotstuff = {:.1}x (paper 3.7-5.2x), Basil/TxBFT-SMaRt = {:.1}x (paper 2.7-3.9x), TAPIR/Basil = {:.1}x (paper 1.8-4.1x)",
            workloads[i].name(),
            basil[i] / hotstuff[i].max(1.0),
            basil[i] / bftsmart[i].max(1.0),
            tapir[i] / basil[i].max(1.0),
        );
    }
}
