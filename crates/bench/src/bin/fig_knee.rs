//! Open-loop saturation knee curves: offered load vs throughput and latency.
//!
//! Sweeps the per-client Poisson arrival rate for each workload and reports,
//! per rate point, the achieved throughput, the latency percentiles, the
//! shed fraction, and whether the point meets the latency SLO. Before the
//! knee, throughput tracks the offered line and latency stays flat; past it,
//! throughput plateaus while queueing pushes the percentiles up and the
//! admission bound starts shedding — the classic saturation shape the
//! paper's peak-throughput points are read from.
//!
//! Output: a human-readable table plus a machine-readable JSON document
//! (written to the path in `BASIL_KNEE_JSON`, or stdout when unset).
//! `BASIL_BENCH_QUICK` shrinks the run; `BASIL_KNEE_RATES=a,b,c` overrides
//! the per-client rate grid (used by the CI smoke run).

use basil::LatencySlo;
use basil_bench::{basil_default, print_table, run_basil_open_loop, RunParams, Workload};

/// One measured rate point on a knee curve.
struct KneePoint {
    rate_per_client: f64,
    offered_tps: f64,
    throughput_tps: f64,
    p50_ms: f64,
    p99_ms: f64,
    shed_fraction: f64,
    slo_met: bool,
}

fn rates_from_env(default: &[f64]) -> Vec<f64> {
    match std::env::var("BASIL_KNEE_RATES") {
        Ok(spec) => spec
            .split(',')
            .filter_map(|r| r.trim().parse::<f64>().ok())
            .filter(|r| *r > 0.0)
            .collect(),
        Err(_) => default.to_vec(),
    }
}

fn main() {
    let quick = std::env::var("BASIL_BENCH_QUICK").is_ok();
    let p = if quick {
        RunParams::quick()
    } else {
        RunParams::default()
    };
    // Per-client arrival rates (tx/s). Closed-loop clients settle around
    // 300-500 tx/s each in this cost model, so the grid straddles the knee.
    let default_rates: &[f64] = if quick {
        &[100.0, 300.0, 600.0]
    } else {
        &[50.0, 100.0, 200.0, 300.0, 400.0, 600.0, 800.0]
    };
    let rates = rates_from_env(default_rates);
    assert!(!rates.is_empty(), "no valid rates in BASIL_KNEE_RATES");
    // Wide enough that pre-knee points pass under Zipfian contention; the
    // first rate that misses it is the saturation knee.
    let slo = LatencySlo::new(10.0, 50.0);
    let workloads = [
        (
            "RW-Z",
            Workload::RwZipf {
                reads: 2,
                writes: 2,
            },
        ),
        ("Retwis", Workload::Retwis),
    ];

    let basil = basil_default(1);
    // The open-loop plane runs with client-side grouped root verification:
    // the verifier window mirrors the replica reply-flush window.
    let basil = basil
        .clone()
        .with_verify_grouping(basil.system.batch_timeout);

    let mut curves: Vec<(&str, Vec<KneePoint>)> = Vec::new();
    for (name, workload) in workloads {
        let mut points = Vec::new();
        for &rate in &rates {
            let report = run_basil_open_loop(basil.clone(), workload, &p, rate);
            let outcome = report.check_slo(&slo);
            eprintln!(
                "[fig_knee] {name} rate={rate:.0}/client: offered {:.0} tx/s, \
                 committed {:.0} tx/s, p50 {:.2} ms, p99 {:.2} ms, shed {:.1}%{}",
                report.offered_tps,
                report.throughput_tps,
                report.p50_latency_ms,
                report.p99_latency_ms,
                report.shed_fraction * 100.0,
                if outcome.met() { "" } else { "  [SLO MISS]" },
            );
            points.push(KneePoint {
                rate_per_client: rate,
                offered_tps: report.offered_tps,
                throughput_tps: report.throughput_tps,
                p50_ms: report.p50_latency_ms,
                p99_ms: report.p99_latency_ms,
                shed_fraction: report.shed_fraction,
                slo_met: outcome.met(),
            });
        }
        curves.push((name, points));
    }

    for (name, points) in &curves {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|pt| {
                vec![
                    format!("{:.0}", pt.rate_per_client),
                    format!("{:.0}", pt.offered_tps),
                    format!("{:.0}", pt.throughput_tps),
                    format!("{:.2}", pt.p50_ms),
                    format!("{:.2}", pt.p99_ms),
                    format!("{:.1}%", pt.shed_fraction * 100.0),
                    if pt.slo_met { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("Saturation knee: {name} (open loop, {} clients)", p.clients),
            &[
                "rate/client",
                "offered",
                "tx/s",
                "p50 ms",
                "p99 ms",
                "shed",
                "SLO",
            ],
            &rows,
        );
    }
    println!(
        "\nShape: throughput tracks the offered line until the knee, then plateaus \
         while p99 inflects and the admission bound sheds the excess."
    );

    let json = render_json(&slo, &p, &curves);
    match std::env::var("BASIL_KNEE_JSON") {
        Ok(path) => {
            if let Some(parent) = std::path::Path::new(&path).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent).expect("create knee JSON dir");
                }
            }
            std::fs::write(&path, &json).expect("write knee JSON");
            eprintln!("[fig_knee] wrote {path}");
        }
        Err(_) => println!("\n{json}"),
    }
}

/// Hand-rolled JSON (the workspace carries no serde): one object per
/// workload, one point per swept rate.
fn render_json(slo: &LatencySlo, p: &RunParams, curves: &[(&str, Vec<KneePoint>)]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"figure\": \"knee\",\n");
    out.push_str(&format!("  \"clients\": {},\n", p.clients));
    out.push_str(&format!(
        "  \"slo\": {{\"p50_ms\": {}, \"p99_ms\": {}}},\n",
        slo.p50_ms, slo.p99_ms
    ));
    out.push_str("  \"workloads\": [\n");
    for (wi, (name, points)) in curves.iter().enumerate() {
        out.push_str(&format!("    {{\"workload\": \"{name}\", \"points\": [\n"));
        for (pi, pt) in points.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"rate_per_client_tps\": {}, \"offered_tps\": {:.1}, \
                 \"throughput_tps\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
                 \"shed_fraction\": {:.4}, \"slo_met\": {}}}{}\n",
                pt.rate_per_client,
                pt.offered_tps,
                pt.throughput_tps,
                pt.p50_ms,
                pt.p99_ms,
                pt.shed_fraction,
                pt.slo_met,
                if pi + 1 == points.len() { "" } else { "," },
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if wi + 1 == curves.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
