//! Compares two `BENCH_*.json` snapshot directories and flags benchmarks
//! whose timing moved beyond a noise band.
//!
//! ```text
//! bench_diff <baseline_dir> <current_dir> [--noise <fraction>]
//! ```
//!
//! The committed baseline lives in `bench/baseline/`; regenerate a current
//! directory with e.g.
//!
//! ```text
//! BASIL_BENCH_JSON=target/bench-json cargo bench --bench store_bench
//! bench_diff bench/baseline target/bench-json
//! ```
//!
//! Exit status is 1 when any benchmark regressed beyond the band, and the
//! CI wiring runs it as a *blocking* gate against `bench/baseline/`. The
//! shim is a single-sample wall-clock harness, so the default ±30% band is
//! deliberately wide: it absorbs shared-runner jitter while still failing
//! the job on structural regressions. (CI's smoke passes are untimed —
//! reported as `untimed`, never a failure — so the gate bites on timed
//! runs.)

use basil_bench::snapshot::{diff_snapshots, load_snapshot_dir, DiffLine, Verdict};
use std::path::Path;
use std::process::ExitCode;

const DEFAULT_NOISE: f64 = 0.30;

fn fmt_ns(ns: Option<f64>) -> String {
    match ns {
        Some(ns) => format!("{ns:>14.1}"),
        None => format!("{:>14}", "-"),
    }
}

fn fmt_delta(line: &DiffLine) -> String {
    match line.delta {
        Some(d) => format!("{:>+8.1}%", d * 100.0),
        None => format!("{:>9}", "-"),
    }
}

fn verdict_tag(v: Verdict) -> &'static str {
    match v {
        Verdict::Regression => "REGRESSION",
        Verdict::Improvement => "improved",
        Verdict::Within => "",
        Verdict::New => "new",
        Verdict::Missing => "missing",
        Verdict::Untimed => "untimed",
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs = Vec::new();
    let mut noise = DEFAULT_NOISE;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--noise" => {
                i += 1;
                noise = args
                    .get(i)
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|n| *n > 0.0)
                    .unwrap_or_else(|| {
                        eprintln!("error: --noise takes a positive fraction (e.g. 0.30)");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                println!("usage: bench_diff <baseline_dir> <current_dir> [--noise <fraction>]");
                return ExitCode::SUCCESS;
            }
            other => dirs.push(other.to_string()),
        }
        i += 1;
    }
    let [baseline_dir, current_dir] = dirs.as_slice() else {
        eprintln!("usage: bench_diff <baseline_dir> <current_dir> [--noise <fraction>]");
        return ExitCode::from(2);
    };

    let load = |dir: &str| match load_snapshot_dir(Path::new(dir)) {
        Ok(snaps) => snaps,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let baseline = load(baseline_dir);
    let current = load(current_dir);
    let lines = diff_snapshots(&baseline, &current, noise);

    println!(
        "bench_diff: {} baseline bins vs {} current bins, noise band ±{:.0}%",
        baseline.len(),
        current.len(),
        noise * 100.0
    );
    println!(
        "{:<16} {:<48} {:>14} {:>14} {:>9}  verdict",
        "bin", "benchmark", "baseline ns", "current ns", "delta"
    );
    for line in &lines {
        println!(
            "{:<16} {:<48} {} {} {}  {}",
            line.bin,
            line.label,
            fmt_ns(line.baseline_ns),
            fmt_ns(line.current_ns),
            fmt_delta(line),
            verdict_tag(line.verdict)
        );
    }

    let count = |v: Verdict| lines.iter().filter(|l| l.verdict == v).count();
    let regressions = count(Verdict::Regression);
    println!(
        "\nsummary: {} compared, {} regressed, {} improved, {} within band, {} new, {} missing, {} untimed",
        lines.iter().filter(|l| l.delta.is_some()).count(),
        regressions,
        count(Verdict::Improvement),
        count(Verdict::Within),
        count(Verdict::New),
        count(Verdict::Missing),
        count(Verdict::Untimed),
    );
    if regressions > 0 {
        eprintln!(
            "bench_diff: {regressions} benchmark(s) regressed beyond ±{:.0}%",
            noise * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
