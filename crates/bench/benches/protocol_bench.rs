//! Criterion micro-benchmarks for protocol-level building blocks: vote
//! tallying/classification, certificate validation, and the fallback view
//! rules.

use basil_common::{ClientId, NodeId, ReplicaId, ShardConfig, ShardId, TxId};
use basil_core::certs::{validate_commit_cert, CommitCert, ShardVotes};
use basil_core::config::BasilConfig;
use basil_core::crypto_engine::SigEngine;
use basil_core::messages::{ProtoDecision, ProtoVote, SignedSt1Reply, St1ReplyBody};
use basil_core::quorum::ShardTally;
use basil_core::views::next_view;
use basil_crypto::KeyRegistry;
use criterion::{criterion_group, criterion_main, Criterion};

fn signed_votes(
    registry: &KeyRegistry,
    cfg: &BasilConfig,
    txid: TxId,
    n: u32,
) -> Vec<SignedSt1Reply> {
    (0..n)
        .map(|i| {
            let rid = ReplicaId::new(ShardId(0), i);
            let body = St1ReplyBody {
                txid,
                replica: rid,
                vote: ProtoVote::Commit,
            };
            let mut engine = SigEngine::new(NodeId::Replica(rid), registry.clone(), cfg);
            let (proof, _) = engine.sign(&body.signed_bytes());
            SignedSt1Reply {
                body,
                proof,
                conflict: None,
            }
        })
        .collect()
}

fn bench_tally(c: &mut Criterion) {
    let cfg = ShardConfig::new(1);
    let registry = KeyRegistry::from_seed(1);
    let basil_cfg = BasilConfig::test_single_shard();
    let txid = TxId::from_bytes([1; 32]);
    let votes = signed_votes(&registry, &basil_cfg, txid, 6);
    c.bench_function("shard_tally_classify_fast_commit", |b| {
        b.iter(|| {
            let mut tally = ShardTally::new(txid, ShardId(0), cfg);
            for v in &votes {
                tally.add(v.clone());
            }
            tally.classify(false)
        })
    });
}

fn bench_cert_validation(c: &mut Criterion) {
    let registry = KeyRegistry::from_seed(1);
    let basil_cfg = BasilConfig::test_single_shard();
    let txid = TxId::from_bytes([2; 32]);
    let votes = signed_votes(&registry, &basil_cfg, txid, 6);
    let cert = CommitCert {
        txid,
        fast_votes: vec![ShardVotes {
            txid,
            shard: ShardId(0),
            decision: ProtoDecision::Commit,
            votes,
            conflict: None,
        }],
        slow: None,
    };
    let shard_cfg = basil_cfg.system.shard;
    c.bench_function("validate_fast_commit_cert_cold_cache", |b| {
        b.iter(|| {
            let mut engine =
                SigEngine::new(NodeId::Client(ClientId(1)), registry.clone(), &basil_cfg);
            validate_commit_cert(&cert, Some(&[ShardId(0)]), &shard_cfg, &mut engine)
        })
    });
    c.bench_function("validate_fast_commit_cert_warm_cache", |b| {
        let mut engine = SigEngine::new(NodeId::Client(ClientId(1)), registry.clone(), &basil_cfg);
        b.iter(|| validate_commit_cert(&cert, Some(&[ShardId(0)]), &shard_cfg, &mut engine))
    });
}

fn bench_views(c: &mut Criterion) {
    let cfg = ShardConfig::new(1);
    let reported = [3u64, 3, 2, 2, 1, 0];
    c.bench_function("fallback_next_view", |b| {
        b.iter(|| next_view(1, &reported, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tally, bench_cert_validation, bench_views
}
criterion_main!(benches);
