//! Criterion micro-benchmarks for protocol-level building blocks: vote
//! tallying/classification, certificate validation, the fallback view
//! rules, the raw event scheduler, and a high-client-count cluster run.

use basil::RuntimeMode;
use basil_bench::{basil_default, run_basil, RunParams, Workload};
use basil_common::{ClientId, Duration, NodeId, ReplicaId, ShardConfig, ShardId, SimTime, TxId};
use basil_core::certs::{validate_commit_cert, CommitCert, ShardVotes};
use basil_core::config::BasilConfig;
use basil_core::crypto_engine::SigEngine;
use basil_core::messages::{ProtoDecision, ProtoVote, SignedSt1Reply, St1ReplyBody};
use basil_core::quorum::ShardTally;
use basil_core::views::next_view;
use basil_crypto::KeyRegistry;
use criterion::{criterion_group, criterion_main, Criterion};

fn signed_votes(
    registry: &KeyRegistry,
    cfg: &BasilConfig,
    txid: TxId,
    n: u32,
) -> Vec<SignedSt1Reply> {
    (0..n)
        .map(|i| {
            let rid = ReplicaId::new(ShardId(0), i);
            let body = St1ReplyBody {
                txid,
                replica: rid,
                vote: ProtoVote::Commit,
            };
            let mut engine = SigEngine::new(NodeId::Replica(rid), registry.clone(), cfg);
            let (proof, _) = engine.sign(&body.signed_bytes());
            SignedSt1Reply {
                body,
                proof,
                conflict: None,
            }
        })
        .collect()
}

fn bench_tally(c: &mut Criterion) {
    let cfg = ShardConfig::new(1);
    let registry = KeyRegistry::from_seed(1);
    let basil_cfg = BasilConfig::test_single_shard();
    let txid = TxId::from_bytes([1; 32]);
    let votes = signed_votes(&registry, &basil_cfg, txid, 6);
    c.bench_function("shard_tally_classify_fast_commit", |b| {
        b.iter(|| {
            let mut tally = ShardTally::new(txid, ShardId(0), cfg);
            for v in &votes {
                tally.add(v.clone());
            }
            tally.classify(false)
        })
    });
}

fn bench_cert_validation(c: &mut Criterion) {
    // The registry as the cluster harness deploys it since the batched
    // quorum-validation change: every participant's verification key is
    // precomputed at build time, so a cold certificate validation performs
    // one leaf hash + one tag check per vote and no key derivations (see
    // crypto_bench's cert_quorum6_* pair for the A/B).
    let registry = KeyRegistry::from_seed_with_nodes(
        1,
        (0..6)
            .map(|i| NodeId::Replica(ReplicaId::new(ShardId(0), i)))
            .chain([NodeId::Client(ClientId(1))]),
    );
    let basil_cfg = BasilConfig::test_single_shard();
    let txid = TxId::from_bytes([2; 32]);
    let votes = signed_votes(&registry, &basil_cfg, txid, 6);
    let cert = CommitCert {
        txid,
        fast_votes: vec![ShardVotes {
            txid,
            shard: ShardId(0),
            decision: ProtoDecision::Commit,
            votes,
            conflict: None,
        }],
        slow: None,
    };
    let shard_cfg = basil_cfg.system.shard;
    c.bench_function("validate_fast_commit_cert_cold_cache", |b| {
        b.iter(|| {
            let mut engine =
                SigEngine::new(NodeId::Client(ClientId(1)), registry.clone(), &basil_cfg);
            validate_commit_cert(&cert, Some(&[ShardId(0)]), &shard_cfg, &mut engine)
        })
    });
    c.bench_function("validate_fast_commit_cert_warm_cache", |b| {
        let mut engine = SigEngine::new(NodeId::Client(ClientId(1)), registry.clone(), &basil_cfg);
        b.iter(|| validate_commit_cert(&cert, Some(&[ShardId(0)]), &shard_cfg, &mut engine))
    });
}

/// Raw event-scheduler churn: many concurrent ping-pong pairs on a jittery
/// LAN, no protocol logic, so the measured cost is queue push/pop plus actor
/// dispatch. This is the micro-benchmark behind the ROADMAP item on the
/// simulator's event queue dominating at high client counts.
mod sched {
    use super::*;
    use basil_simnet::{Actor, Context, NetworkConfig, NodeProps, Simulation};
    use std::any::Any;

    #[derive(Clone, Debug)]
    pub enum Msg {
        Ping(u32),
        Pong(u32),
    }

    pub struct Pinger {
        pub peer: NodeId,
        pub remaining: u32,
        pub window: u32,
    }

    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<Msg>) {
            for i in 0..self.window {
                ctx.send(self.peer, Msg::Ping(i));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Pong(i) = msg {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.send(self.peer, Msg::Ping(i));
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    pub struct Echoer;

    impl Actor<Msg> for Echoer {
        fn on_message(&mut self, ctx: &mut Context<Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(i) = msg {
                ctx.send(from, Msg::Pong(i));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Builds `pairs` pinger/echoer pairs and runs them to completion,
    /// returning the number of events processed.
    pub fn run(pairs: u64, round_trips: u32) -> u64 {
        let mut sim: Simulation<Msg> = Simulation::new(7, NetworkConfig::lan());
        for p in 0..pairs {
            let pinger = NodeId::Client(ClientId(2 * p));
            let echoer = NodeId::Client(ClientId(2 * p + 1));
            sim.add_node(
                pinger,
                NodeProps::default(),
                Box::new(Pinger {
                    peer: echoer,
                    remaining: round_trips,
                    window: 4,
                }),
            );
            sim.add_node(echoer, NodeProps::default(), Box::new(Echoer));
        }
        sim.run_until(SimTime::from_secs(10));
        sim.metrics().events_processed
    }
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scheduler");
    group.sample_size(10);
    for pairs in [16u64, 256] {
        group.bench_function(&format!("ping_pong_{pairs}pairs"), |b| {
            b.iter(|| sched::run(pairs, 200))
        });
    }
    group.finish();
}

fn bench_cluster_high_clients(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_cluster");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3));
    // The high-client-count case the fig5c scale-up depends on: a full Basil
    // deployment at 4x the default experiment's client count.
    let params = RunParams {
        clients: 96,
        warmup: Duration::from_millis(50),
        window: Duration::from_millis(150),
        seed: 42,
        runtime: RuntimeMode::Serial,
    };
    let workload = Workload::RwUniform {
        reads: 2,
        writes: 2,
    };
    group.bench_function("basil_rwu_96clients", |b| {
        b.iter(|| run_basil(basil_default(1), workload, &params))
    });
    // The same deployment on the thread-sharded runtime (identical
    // simulated results — tests/parallel_determinism.rs — so the delta is
    // pure runtime overhead/speedup).
    for workers in [2usize, 4] {
        let par = params.clone().with_runtime(RuntimeMode::Parallel(workers));
        group.bench_function(&format!("basil_rwu_96clients_par{workers}"), move |b| {
            b.iter(|| run_basil(basil_default(1), workload, &par))
        });
    }
    // The contended counterpart (YCSB-T Zipf 0.9): hot keys concentrate the
    // per-key version arrays and exercise the store's slow-path scans, so a
    // regression in the conflict-window checks shows up here first.
    let zipf_workload = Workload::RwZipf {
        reads: 2,
        writes: 2,
    };
    group.bench_function("basil_rwz_96clients", |b| {
        b.iter(|| run_basil(basil_default(1), zipf_workload, &params))
    });
    group.finish();
}

/// The zero-copy message plane: what a prepare/writeback fan-out costs in
/// message construction alone. Before the Arc refactor each `St1`/`Writeback`
/// clone deep-copied the transaction (read/write sets, keys, values) or the
/// certificate (signed vote sets); now each is a reference-count bump.
/// `signed_bytes` additionally hits the memoized transaction encoding.
fn bench_message_plane(c: &mut Criterion) {
    use basil_core::messages::{St1, Writeback};
    use basil_store::TransactionBuilder;
    use std::sync::Arc;

    let mut b =
        TransactionBuilder::new(basil_common::Timestamp::from_nanos(1_000_000, ClientId(1)));
    for i in 0..4 {
        b.record_read(
            basil_common::Key::new(format!("read-key-{i}")),
            basil_common::Timestamp::ZERO,
        );
        b.record_write(
            basil_common::Key::new(format!("write-key-{i}")),
            basil_common::Value::from_u64(i),
        );
    }
    let tx = b.build_shared();
    let st1 = St1 {
        tx: Arc::clone(&tx),
        auth: None,
        recovery: false,
    };
    // 3 shards x 6 replicas: the paper's sharded deployment fan-out.
    c.bench_function("message_plane/st1_fanout_18", |b| {
        b.iter(|| {
            let clones: Vec<St1> = (0..18).map(|_| st1.clone()).collect();
            clones.len()
        })
    });
    c.bench_function("message_plane/st1_signed_bytes_memoized", |b| {
        b.iter(|| st1.signed_bytes().len())
    });

    let registry = KeyRegistry::from_seed(1);
    let basil_cfg = BasilConfig::test_single_shard();
    let votes = signed_votes(&registry, &basil_cfg, tx.id(), 6);
    let cert = Arc::new(basil_core::certs::DecisionCert::Commit(CommitCert {
        txid: tx.id(),
        fast_votes: vec![ShardVotes {
            txid: tx.id(),
            shard: ShardId(0),
            decision: ProtoDecision::Commit,
            votes,
            conflict: None,
        }],
        slow: None,
    }));
    let wb = Writeback { cert, tx: Some(tx) };
    c.bench_function("message_plane/writeback_fanout_18", |b| {
        b.iter(|| {
            let clones: Vec<Writeback> = (0..18).map(|_| wb.clone()).collect();
            clones.len()
        })
    });
}

fn bench_views(c: &mut Criterion) {
    let cfg = ShardConfig::new(1);
    let reported = [3u64, 3, 2, 2, 1, 0];
    c.bench_function("fallback_next_view", |b| {
        b.iter(|| next_view(1, &reported, &cfg))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tally, bench_cert_validation, bench_message_plane, bench_views,
        bench_scheduler, bench_cluster_high_clients
}
criterion_main!(benches);
