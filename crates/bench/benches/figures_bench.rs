//! Scaled-down versions of the paper's figure experiments, runnable through
//! `cargo bench`. Each benchmark runs one simulated deployment for a short
//! measurement window; the full-size experiments (with the paper-vs-measured
//! tables) are the `fig*` binaries in `src/bin/`.

use basil::baselines::SystemKind;
use basil_bench::{basil_default, run_baseline, run_basil, RunParams, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration as StdDuration;

fn params() -> RunParams {
    RunParams::quick()
}

fn bench_fig4_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_smallbank_point");
    group
        .sample_size(10)
        .measurement_time(StdDuration::from_secs(20));
    group.bench_function("basil", |b| {
        b.iter(|| run_basil(basil_default(1), Workload::Smallbank, &params()))
    });
    group.bench_function("tapir", |b| {
        b.iter(|| run_baseline(SystemKind::Tapir, 1, Workload::Smallbank, &params()))
    });
    group.bench_function("txhotstuff", |b| {
        b.iter(|| run_baseline(SystemKind::TxHotstuff, 1, Workload::Smallbank, &params()))
    });
    group.bench_function("txbftsmart", |b| {
        b.iter(|| run_baseline(SystemKind::TxBftSmart, 1, Workload::Smallbank, &params()))
    });
    group.finish();
}

fn bench_fig5a_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_signature_ablation");
    group
        .sample_size(10)
        .measurement_time(StdDuration::from_secs(20));
    let workload = Workload::RwUniform {
        reads: 2,
        writes: 2,
    };
    group.bench_function("basil", |b| {
        b.iter(|| run_basil(basil_default(1), workload, &params()))
    });
    group.bench_function("basil_noproofs", |b| {
        b.iter(|| run_basil(basil_default(1).without_proofs(), workload, &params()))
    });
    group.finish();
}

fn bench_fig6a_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_fastpath_ablation");
    group
        .sample_size(10)
        .measurement_time(StdDuration::from_secs(20));
    let workload = Workload::RwZipf {
        reads: 2,
        writes: 2,
    };
    group.bench_function("basil", |b| {
        b.iter(|| run_basil(basil_default(1), workload, &params()))
    });
    group.bench_function("basil_nofp", |b| {
        b.iter(|| run_basil(basil_default(1).without_fast_path(), workload, &params()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4_points,
    bench_fig5a_points,
    bench_fig6a_points
);
criterion_main!(benches);
