//! Criterion micro-benchmarks for the storage substrates: the MVTSO engine
//! (Algorithm 1) and the baseline OCC store.

use basil_common::{ClientId, Duration, Key, SimTime, Timestamp, Value};
use basil_store::occ::OccStore;
use basil_store::{MvtsoStore, Transaction, TransactionBuilder};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

fn tx(i: u64) -> Arc<Transaction> {
    let mut b = TransactionBuilder::new(Timestamp::from_nanos(1_000 + i * 10, ClientId(i % 16)));
    b.record_read(Key::new(format!("r{}", i % 256)), Timestamp::ZERO);
    b.record_write(Key::new(format!("w{}", i % 256)), Value::from_u64(i));
    b.build_shared()
}

fn bench_mvtso(c: &mut Criterion) {
    c.bench_function("mvtso_prepare_commit", |b| {
        b.iter_batched(
            MvtsoStore::new,
            |mut store| {
                for i in 0..64u64 {
                    let t = tx(i);
                    store.prepare(&t, SimTime::from_secs(1), Duration::from_millis(100));
                    store.commit(&t);
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("mvtso_versioned_read", |b| {
        let mut store = MvtsoStore::new();
        for i in 0..256u64 {
            let t = tx(i);
            store.prepare(&t, SimTime::from_secs(1), Duration::from_millis(100));
            store.commit(&t);
        }
        let key = Key::new("w17");
        b.iter(|| store.read_without_rts(&key, Timestamp::from_nanos(u64::MAX, ClientId(0))))
    });
}

fn bench_occ(c: &mut Criterion) {
    c.bench_function("occ_prepare_commit", |b| {
        b.iter_batched(
            OccStore::new,
            |mut store| {
                for i in 0..64u64 {
                    let mut builder =
                        TransactionBuilder::new(Timestamp::from_nanos(1_000 + i, ClientId(1)));
                    builder.record_write(Key::new(format!("k{}", i % 64)), Value::from_u64(i));
                    let t = builder.build_shared();
                    store.prepare(&t);
                    store.commit(&t.id());
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_txid(c: &mut Criterion) {
    let t = tx(7);
    c.bench_function("transaction_id_hash", |b| b.iter(|| t.id()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mvtso, bench_occ, bench_txid
}
criterion_main!(benches);
