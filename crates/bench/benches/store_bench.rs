//! Criterion micro-benchmarks for the storage substrates: the MVTSO engine
//! (Algorithm 1) and the baseline OCC store.
//!
//! The `store_contention` group measures the flattened version-array layout
//! where it matters: a wide uniform keyspace (every check resolved by the
//! generation-stamped watermarks — the scan-free fast path), a Zipfian
//! hot-key workload (deep per-key arrays, still append-ordered), and a
//! stale-read Zipfian variant that forces the ordered slow-path scans.
//! `store_contention/gc_sweep` covers the allocation-free prefix-drain GC.
//! CI runs the Zipfian case once per push via
//! `cargo bench --bench store_bench -- --test zipf`.
//!
//! `mvtso_prepare_commit_seam` runs the identical workload through the
//! `TxStore` trait seam (the acceptance bound is ≤5% overhead vs the
//! direct calls), and the `store_concurrent` group drives the sharded
//! `ConcurrentMvtsoStore` across 1/2/4/8 threads on uniform, Zipf-hot and
//! mixed commit/abort batches — the t1 rows are the serial-overhead
//! reference; multicore hosts show the scaling curve.

use basil::workloads::zipf::ZipfSampler;
use basil_common::{ClientId, Duration, Key, SimTime, Timestamp, Value};
use basil_store::occ::OccStore;
use basil_store::{ConcurrentMvtsoStore, MvtsoStore, Transaction, TransactionBuilder, TxStore};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

const CLOCK: SimTime = SimTime::from_secs(100);
const DELTA: Duration = Duration::from_millis(100);

fn tx(i: u64) -> Arc<Transaction> {
    let mut b = TransactionBuilder::new(Timestamp::from_nanos(1_000 + i * 10, ClientId(i % 16)));
    b.record_read(Key::new(format!("r{}", i % 256)), Timestamp::ZERO);
    b.record_write(Key::new(format!("w{}", i % 256)), Value::from_u64(i));
    b.build_shared()
}

fn bench_mvtso(c: &mut Criterion) {
    c.bench_function("mvtso_prepare_commit", |b| {
        b.iter_batched(
            MvtsoStore::new,
            |mut store| {
                for i in 0..64u64 {
                    let t = tx(i);
                    store.prepare(&t, SimTime::from_secs(1), Duration::from_millis(100));
                    store.commit(&t);
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });

    // The same loop through the `TxStore` seam `BasilReplica` is generic
    // over: with `S = MvtsoStore` every call is statically dispatched, so
    // this must track `mvtso_prepare_commit` within noise (the ≤5% seam
    // bound the concurrent-store PR promises).
    c.bench_function("mvtso_prepare_commit_seam", |b| {
        fn run_seam<S: TxStore>(store: &mut S) {
            for i in 0..64u64 {
                let t = tx(i);
                store.prepare(&t, SimTime::from_secs(1), Duration::from_millis(100));
                store.commit(&t);
            }
        }
        b.iter_batched(
            MvtsoStore::new,
            |mut store| run_seam(&mut store),
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("mvtso_versioned_read", |b| {
        let mut store = MvtsoStore::new();
        for i in 0..256u64 {
            let t = tx(i);
            store.prepare(&t, SimTime::from_secs(1), Duration::from_millis(100));
            store.commit(&t);
        }
        let key = Key::new("w17");
        b.iter(|| store.read_without_rts(&key, Timestamp::from_nanos(u64::MAX, ClientId(0))))
    });
}

/// Pre-generated transaction batches for the contention cases, built once
/// outside the timed region.
struct ContentionBatch {
    txs: Vec<Arc<Transaction>>,
}

impl ContentionBatch {
    /// 2r2w transactions with monotone timestamps. Keys are drawn by
    /// `pick_key`; reads observe the newest version a sequential execution
    /// would see, shifted back `staleness` versions (0 = fresh, so every
    /// check is watermark-answerable; 1 = one version stale, so every read
    /// check must scan and conflict).
    fn generate(count: u64, staleness: usize, mut pick_key: impl FnMut(u64) -> u64) -> Self {
        let mut history: HashMap<u64, Vec<Timestamp>> = HashMap::new();
        let mut txs = Vec::with_capacity(count as usize);
        for i in 0..count {
            let ts = Timestamp::from_nanos(1_000 + i * 10, ClientId(i % 16));
            let mut b = TransactionBuilder::new(ts);
            for op in 0..4u64 {
                let key_id = pick_key(i * 4 + op);
                let key = Key::new(format!("k{key_id}"));
                if op < 2 {
                    let versions = history.entry(key_id).or_default();
                    let version = if versions.len() > staleness {
                        versions[versions.len() - 1 - staleness]
                    } else {
                        Timestamp::ZERO
                    };
                    b.record_read(key, version);
                } else {
                    b.record_write(key, Value::from_u64(i));
                    history.entry(key_id).or_default().push(ts);
                }
            }
            txs.push(b.build_shared());
        }
        ContentionBatch { txs }
    }

    /// Runs prepare + decision application for every transaction and returns
    /// the store (so the caller can inspect the fast-path counters).
    fn run(&self) -> MvtsoStore {
        let mut store = MvtsoStore::new();
        for t in &self.txs {
            let outcome = store.prepare(t, CLOCK, DELTA);
            match outcome {
                basil_store::CheckOutcome::Decided(v) if v.is_commit() => {
                    store.commit(t);
                }
                _ => {
                    store.abort(t.id());
                }
            }
        }
        store
    }
}

/// Builds the `prepare_stale_writers` scenario: a hot key read heavily in a
/// recent burst (microsecond-spaced, so reader intervals are short and the
/// earlier time range stays uncovered), then 64 write-only transactions
/// whose timestamps land in the quiet gap between the bursts.
fn stale_writer_batch() -> ContentionBatch {
    const US: u64 = 1_000;
    let hot = Key::new("hot");
    let mut txs = Vec::new();
    let mut latest = Timestamp::ZERO;
    let mut seq = 0u64;
    let mut read_write = |t_ns: u64, latest: &mut Timestamp, txs: &mut Vec<Arc<Transaction>>| {
        let ts = Timestamp::from_nanos(t_ns, ClientId(seq % 16));
        seq += 1;
        let mut b = TransactionBuilder::new(ts);
        b.record_read(hot.clone(), *latest);
        b.record_write(hot.clone(), Value::from_u64(t_ns));
        *latest = ts;
        txs.push(b.build_shared());
    };
    // Early burst: 64 fresh sequential 1r1w transactions (≈ one summary
    // bucket wide).
    for i in 0..64u64 {
        read_write(US + 2 * US * i, &mut latest, &mut txs);
    }
    // Recent burst, far above the gap: a write-only bridge (so the first
    // reader's interval starts here, not back at the early burst), then 256
    // fresh readers.
    let bridge = Timestamp::from_nanos(4_500 * US, ClientId(7));
    let mut b = TransactionBuilder::new(bridge);
    b.record_write(hot.clone(), Value::from_u64(0));
    latest = bridge;
    txs.push(b.build_shared());
    for i in 0..256u64 {
        read_write(4_502 * US + 2 * US * i, &mut latest, &mut txs);
    }
    // Stale writers: timestamps inside the [2 ms, 2.64 ms] gap. Each is
    // below the read watermark (slow path) but above every version the
    // recent readers actually read, so none conflicts — the scan over the
    // 257 newer readers is pure overhead the summary removes.
    for i in 0..64u64 {
        let ts = Timestamp::from_nanos(2_000 * US + 10 * US * i, ClientId(i % 16));
        let mut b = TransactionBuilder::new(ts);
        b.record_write(hot.clone(), Value::from_u64(i));
        txs.push(b.build_shared());
    }
    ContentionBatch { txs }
}

fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_contention");

    // Wide uniform keyspace: almost every key is fresh, the conflict window
    // is empty, and every check should resolve from the watermarks.
    let mut uniform_rng = SmallRng::seed_from_u64(7);
    let uniform = ContentionBatch::generate(512, 0, move |_| {
        use rand::Rng;
        uniform_rng.gen_range(0..65_536u64)
    });
    let sample = uniform.run();
    assert!(
        sample.stats().fast_path_hit_rate() > 0.99,
        "uniform wide keyspace should be scan-free, got {:?}",
        sample.stats()
    );
    group.bench_function("prepare_uniform_wide", |b| b.iter(|| uniform.run()));

    // Zipfian hot keys, fresh reads: per-key arrays grow deep (the hottest
    // key sees a large share of 512 transactions) but stay append-ordered.
    let zipf = ZipfSampler::new(1_024, 0.9);
    let mut zipf_rng = SmallRng::seed_from_u64(11);
    let hot = ContentionBatch::generate(512, 0, move |_| zipf.sample(&mut zipf_rng));
    group.bench_function("prepare_zipf_hot", |b| b.iter(|| hot.run()));

    // Zipfian hot keys, stale reads: every contended read check falls
    // through the watermark to the ordered scan and most prepares abort —
    // the worst case for the flattened layout.
    let zipf2 = ZipfSampler::new(1_024, 0.9);
    let mut stale_rng = SmallRng::seed_from_u64(13);
    let stale = ContentionBatch::generate(512, 1, move |_| zipf2.sample(&mut stale_rng));
    let sample = stale.run();
    assert!(
        sample.stats().slow_path_checks > 0,
        "stale zipfian reads must exercise the slow path, got {:?}",
        sample.stats()
    );
    group.bench_function("prepare_zipf_stale", |b| b.iter(|| stale.run()));

    // Out-of-order writers probing a quiet period. A key accumulates a burst
    // of fresh sequential reads (so its read watermark is high), then stale
    // write-only transactions arrive with timestamps in an earlier gap no
    // reader interval covers. Every such write falls past the watermark —
    // check (5)'s slow path — and without the per-key reader summary each
    // one walks the full suffix of newer readers to prove nobody read over
    // it. The Bloom-style summary answers "gap is clear" in O(1) instead.
    let stale_writers = stale_writer_batch();
    let sample = stale_writers.run();
    assert!(
        sample.stats().reader_scan_skips >= 32,
        "gap writes must skip the reader scan via the summary, got {:?}",
        sample.stats()
    );
    group.bench_function("prepare_stale_writers", |b| b.iter(|| stale_writers.run()));

    // Steady-state periodic GC, as a replica runs it: keep committing hot-key
    // versions (and sprinkling RTS entries) while sweeping a trailing
    // watermark. Each iteration is 64 commits plus one sweep that drains the
    // superseded prefix of every touched key in place — the allocation-free
    // path that replaced the per-key `BTreeMap::split_off` tail copies.
    group.measurement_time(std::time::Duration::from_millis(100));
    group.bench_function("gc_sweep", |b| {
        let mut store = MvtsoStore::new();
        let mut i: u64 = 0;
        b.iter(|| {
            for _ in 0..64 {
                i += 1;
                let ts = Timestamp::from_nanos(1_000 + i * 10, ClientId(i % 16));
                let mut builder = TransactionBuilder::new(ts);
                builder.record_write(Key::new(format!("k{}", i % 256)), Value::from_u64(i));
                let t = builder.build_shared();
                store.prepare(&t, CLOCK, DELTA);
                store.commit(&t);
                if i.is_multiple_of(8) {
                    let probe = Timestamp::from_nanos(1_001 + i * 10, ClientId(17));
                    store.read(&Key::new(format!("k{}", i % 256)), probe);
                }
            }
            // Retain roughly two versions per key behind the watermark.
            let horizon = 256 * 2 * 10;
            store.gc_before(Timestamp::from_nanos(
                (1_000 + i * 10).saturating_sub(horizon),
                ClientId(0),
            ));
        })
    });

    group.finish();
}

/// Runs `txs` against a fresh [`ConcurrentMvtsoStore`], partitioned
/// round-robin over `threads` OS threads (inline when `threads == 1`, so
/// the single-thread row has no spawn overhead and reads as the serial
/// reference). `abort_every != 0` force-aborts every that-many-th
/// transaction even when it voted commit, driving the stop-the-world abort
/// path alongside commits.
fn run_concurrent(txs: &[Arc<Transaction>], threads: usize, abort_every: usize) {
    fn step(store: &ConcurrentMvtsoStore, j: usize, t: &Arc<Transaction>, abort_every: usize) {
        let outcome = store.prepare(t, CLOCK, DELTA);
        let forced_abort = abort_every != 0 && j.is_multiple_of(abort_every);
        match outcome {
            basil_store::CheckOutcome::Decided(v) if v.is_commit() && !forced_abort => {
                store.commit(t);
            }
            _ => {
                store.abort(t.id());
            }
        }
    }
    let store = ConcurrentMvtsoStore::new(16);
    if threads <= 1 {
        for (j, t) in txs.iter().enumerate() {
            step(&store, j, t, abort_every);
        }
    } else {
        std::thread::scope(|s| {
            for tid in 0..threads {
                let store = &store;
                s.spawn(move || {
                    for (j, t) in txs.iter().enumerate().skip(tid).step_by(threads) {
                        step(store, j, t, abort_every);
                    }
                });
            }
        });
    }
}

fn bench_concurrent(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_concurrent");

    // Same batch shapes as `store_contention`, replayed against the sharded
    // concurrent store at 1/2/4/8 threads. The `_t1` rows are the serial
    // reference (no spawns); the sweep shows how the per-shard locks and
    // lock-free watermark screens scale — and, on a single-core box, what
    // the synchronization itself costs.
    let mut uniform_rng = SmallRng::seed_from_u64(7);
    let uniform = ContentionBatch::generate(512, 0, move |_| {
        use rand::Rng;
        uniform_rng.gen_range(0..65_536u64)
    });
    let zipf = ZipfSampler::new(1_024, 0.9);
    let mut zipf_rng = SmallRng::seed_from_u64(11);
    let hot = ContentionBatch::generate(512, 0, move |_| zipf.sample(&mut zipf_rng));

    for threads in [1usize, 2, 4, 8] {
        group.bench_function(&format!("prepare_uniform_t{threads}"), |b| {
            b.iter(|| run_concurrent(&uniform.txs, threads, 0))
        });
        group.bench_function(&format!("prepare_zipf_hot_t{threads}"), |b| {
            b.iter(|| run_concurrent(&hot.txs, threads, 0))
        });
        // Mixed decisions: one in four prepared transactions is aborted
        // (the stop-the-world path) while the rest commit.
        group.bench_function(&format!("mixed_commit_t{threads}"), |b| {
            b.iter(|| run_concurrent(&uniform.txs, threads, 4))
        });
    }

    group.finish();
}

fn bench_occ(c: &mut Criterion) {
    c.bench_function("occ_prepare_commit", |b| {
        b.iter_batched(
            OccStore::new,
            |mut store| {
                for i in 0..64u64 {
                    let mut builder =
                        TransactionBuilder::new(Timestamp::from_nanos(1_000 + i, ClientId(1)));
                    builder.record_write(Key::new(format!("k{}", i % 64)), Value::from_u64(i));
                    let t = builder.build_shared();
                    store.prepare(&t);
                    store.commit(&t.id());
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });

    // The bounded per-key history (OccStore::HISTORY_WINDOW newest versions)
    // behind TAPIR-style snapshot reads: a mid-history versioned read over a
    // hot key whose window is full.
    c.bench_function("occ_versioned_read", |b| {
        let mut store = OccStore::new();
        for i in 0..256u64 {
            let mut builder =
                TransactionBuilder::new(Timestamp::from_nanos(1_000 + i, ClientId(1)));
            builder.record_write(Key::new("hot"), Value::from_u64(i));
            let t = builder.build_shared();
            store.prepare(&t);
            store.commit(&t.id());
        }
        let key = Key::new("hot");
        let mid = Timestamp::from_nanos(1_000 + 256 - 16, ClientId(0));
        b.iter(|| store.versioned_read(&key, mid))
    });
}

fn bench_txid(c: &mut Criterion) {
    let t = tx(7);
    c.bench_function("transaction_id_hash", |b| b.iter(|| t.id()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mvtso, bench_contention, bench_concurrent, bench_occ, bench_txid
}
criterion_main!(benches);
