//! Criterion micro-benchmarks for the cryptographic substrate: SHA-256,
//! HMAC, Merkle reply batching, and the signature scheme. These measure the
//! real (host) cost of the from-scratch implementations; the simulator
//! charges the calibrated ed25519 costs instead (see `basil_crypto::cost`).

use basil_common::{ClientId, NodeId, ReplicaId, ShardId, TxId};
use basil_core::certs::{validate_commit_cert, CommitCert, ShardVotes};
use basil_core::config::BasilConfig;
use basil_core::crypto_engine::SigEngine;
use basil_core::messages::{ProtoDecision, ProtoVote, SignedSt1Reply, St1ReplyBody};
use basil_crypto::hmac::hmac_sha256;
use basil_crypto::{BatchProof, BatchSigner, KeyRegistry, MerkleTree, Sha256, SignatureCache};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Sha256::digest(data))
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    c.bench_function("hmac_sha256_64B", |b| {
        let key = [7u8; 32];
        let msg = [1u8; 64];
        b.iter(|| hmac_sha256(&key, &msg))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for leaves in [4usize, 16, 64] {
        let payloads: Vec<Vec<u8>> = (0..leaves)
            .map(|i| format!("reply-{i}").into_bytes())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("build_and_prove", leaves),
            &payloads,
            |b, payloads| {
                b.iter(|| {
                    let tree = MerkleTree::build(payloads);
                    tree.prove(leaves / 2)
                })
            },
        );
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let registry = KeyRegistry::from_seed(1);
    let node = NodeId::Client(ClientId(1));
    let keypair = registry.keypair(node);
    c.bench_function("sign_single", |b| {
        b.iter(|| BatchProof::sign_single(&keypair, b"a reply payload"))
    });
    let proof = BatchProof::sign_single(&keypair, b"a reply payload");
    c.bench_function("verify_single_uncached", |b| {
        b.iter(|| {
            let mut cache = SignatureCache::new();
            proof.verify(b"a reply payload", &registry, &mut cache)
        })
    });
    // ROADMAP: batching > 16 was untested; sweep through 64 so the
    // amortization curve of Figure 6b has micro-benchmark backing.
    for batch in [16usize, 32, 64] {
        let payloads: Vec<Vec<u8>> = (0..batch)
            .map(|i| format!("reply {i}").into_bytes())
            .collect();
        c.bench_function(&format!("batch_sign_{batch}"), |b| {
            b.iter(|| {
                let mut signer = BatchSigner::new(registry.keypair(node), batch);
                for (i, payload) in payloads.iter().enumerate() {
                    signer.push(NodeId::Client(ClientId(i as u64)), payload);
                }
            })
        });
    }
}

/// The tentpole acceptance benchmark: the reply-batch flush burst with the
/// incremental frontier versus the full `MerkleTree::build` rebuild the
/// flush path used to pay.
///
/// `rebuild_at_flush` is the old flush: hash every payload, rebuild the
/// whole tree, prove every leaf — `O(b)` hashing in one burst.
/// `frontier_append_flush` is the new flush: each append already folded its
/// leaf into the frontier when the reply was queued (that amortized work is
/// the `iter_batched` setup), so the burst is just the `O(log b)` seal plus
/// proof extraction. `frontier_total` re-counts the appends inside the
/// timed region to document that total hashing is conserved — the frontier
/// wins by moving it off the flush burst and recycling allocations, not by
/// hashing less.
fn bench_frontier_vs_rebuild(c: &mut Criterion) {
    use basil_crypto::MerkleFrontier;
    use criterion::BatchSize;
    let mut group = c.benchmark_group("reply_batch_flush");
    for batch in [16usize, 32, 64, 128] {
        let payloads: Vec<Vec<u8>> = (0..batch)
            .map(|i| format!("st1-reply-{i}-to-some-client").into_bytes())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("rebuild_at_flush", batch),
            &payloads,
            |b, payloads| {
                b.iter(|| {
                    let tree = MerkleTree::build(payloads);
                    let proofs: Vec<_> = (0..payloads.len()).map(|i| tree.prove(i)).collect();
                    (tree.root(), proofs)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("frontier_append_flush", batch),
            &payloads,
            |b, payloads| {
                let mut template = MerkleFrontier::new();
                for payload in payloads {
                    template.append(payload);
                }
                b.iter_batched(
                    || template.clone(),
                    |mut frontier| {
                        let sealed = frontier.seal();
                        let proofs: Vec<_> = (0..payloads.len()).map(|i| sealed.prove(i)).collect();
                        (sealed.root(), proofs)
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("frontier_total", batch),
            &payloads,
            |b, payloads| {
                let mut frontier = MerkleFrontier::new();
                b.iter(|| {
                    frontier.reset();
                    for payload in payloads {
                        frontier.append(payload);
                    }
                    let sealed = frontier.seal();
                    let proofs: Vec<_> = (0..payloads.len()).map(|i| sealed.prove(i)).collect();
                    (sealed.root(), proofs)
                })
            },
        );
    }
    group.finish();
}

/// The ROADMAP slow spot: a cold `DecisionCert` validation paid a full
/// signature check *per vote*, and each of those checks re-derived the
/// voting replica's verification key (an extra HMAC, two SHA-256 passes).
/// The cluster harness now precomputes every participant's key at
/// deployment build time (`KeyRegistry::from_seed_with_nodes`), so the
/// derivation is paid once per node per deployment instead of once per
/// vote — this pair of benchmarks shows the per-quorum delta. (True
/// signature aggregation is not possible with per-node MACs; the remaining
/// per-vote work is one leaf hash and one tag check, the same floor ed25519
/// batch verification has.)
fn bench_cert_quorum_validation(c: &mut Criterion) {
    let mut cfg = BasilConfig::test_single_shard();
    cfg.crypto_mode = basil_core::config::CryptoMode::Real;
    let txid = TxId::from_bytes([7; 32]);
    let client = NodeId::Client(ClientId(1));
    let replicas: Vec<NodeId> = (0..6)
        .map(|i| NodeId::Replica(ReplicaId::new(ShardId(0), i)))
        .collect();
    let shard_cfg = cfg.system.shard;

    let build_cert = |registry: &KeyRegistry| {
        let votes: Vec<SignedSt1Reply> = (0..6)
            .map(|i| {
                let rid = ReplicaId::new(ShardId(0), i);
                let body = St1ReplyBody {
                    txid,
                    replica: rid,
                    vote: ProtoVote::Commit,
                };
                let mut engine = SigEngine::new(NodeId::Replica(rid), registry.clone(), &cfg);
                let (proof, _) = engine.sign(&body.signed_bytes());
                SignedSt1Reply {
                    body,
                    proof,
                    conflict: None,
                }
            })
            .collect();
        CommitCert {
            txid,
            fast_votes: vec![ShardVotes {
                txid,
                shard: ShardId(0),
                decision: ProtoDecision::Commit,
                votes,
                conflict: None,
            }],
            slow: None,
        }
    };

    // Per-vote key derivation (the pre-refactor behaviour).
    let derived = KeyRegistry::from_seed(1);
    let cert = build_cert(&derived);
    c.bench_function("cert_quorum6_cold_derived_keys", |b| {
        b.iter(|| {
            let mut engine = SigEngine::new(client, derived.clone(), &cfg);
            validate_commit_cert(&cert, Some(&[ShardId(0)]), &shard_cfg, &mut engine)
        })
    });

    // Keys precomputed once per deployment (what the harness now builds).
    let precomputed =
        KeyRegistry::from_seed_with_nodes(1, replicas.iter().copied().chain([client]));
    let cert = build_cert(&precomputed);
    c.bench_function("cert_quorum6_cold_precomputed_keys", |b| {
        b.iter(|| {
            let mut engine = SigEngine::new(client, precomputed.clone(), &cfg);
            validate_commit_cert(&cert, Some(&[ShardId(0)]), &shard_cfg, &mut engine)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha256, bench_hmac, bench_merkle, bench_signatures,
        bench_frontier_vs_rebuild, bench_cert_quorum_validation
}
criterion_main!(benches);
