//! Criterion micro-benchmarks for the cryptographic substrate: SHA-256,
//! HMAC, Merkle reply batching, and the signature scheme. These measure the
//! real (host) cost of the from-scratch implementations; the simulator
//! charges the calibrated ed25519 costs instead (see `basil_crypto::cost`).

use basil_common::{ClientId, NodeId};
use basil_crypto::hmac::hmac_sha256;
use basil_crypto::{BatchProof, BatchSigner, KeyRegistry, MerkleTree, Sha256, SignatureCache};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Sha256::digest(data))
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    c.bench_function("hmac_sha256_64B", |b| {
        let key = [7u8; 32];
        let msg = [1u8; 64];
        b.iter(|| hmac_sha256(&key, &msg))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for leaves in [4usize, 16, 64] {
        let payloads: Vec<Vec<u8>> = (0..leaves)
            .map(|i| format!("reply-{i}").into_bytes())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("build_and_prove", leaves),
            &payloads,
            |b, payloads| {
                b.iter(|| {
                    let tree = MerkleTree::build(payloads);
                    tree.prove(leaves / 2)
                })
            },
        );
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let registry = KeyRegistry::from_seed(1);
    let node = NodeId::Client(ClientId(1));
    let keypair = registry.keypair(node);
    c.bench_function("sign_single", |b| {
        b.iter(|| BatchProof::sign_single(&keypair, b"a reply payload"))
    });
    let proof = BatchProof::sign_single(&keypair, b"a reply payload");
    c.bench_function("verify_single_uncached", |b| {
        b.iter(|| {
            let mut cache = SignatureCache::new();
            proof.verify(b"a reply payload", &registry, &mut cache)
        })
    });
    // ROADMAP: batching > 16 was untested; sweep through 64 so the
    // amortization curve of Figure 6b has micro-benchmark backing.
    for batch in [16usize, 32, 64] {
        c.bench_function(&format!("batch_sign_{batch}"), |b| {
            b.iter(|| {
                let mut signer = BatchSigner::new(registry.keypair(node), batch);
                for i in 0..batch as u64 {
                    signer.push(
                        NodeId::Client(ClientId(i)),
                        format!("reply {i}").into_bytes(),
                    );
                }
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sha256, bench_hmac, bench_merkle, bench_signatures
}
criterion_main!(benches);
