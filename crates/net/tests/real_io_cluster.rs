//! The real-IO smoke test: an n = 6 / f = 1 Basil deployment as actual OS
//! processes over localhost TCP, driven by the supervisor harness.
//!
//! Two scenarios: a fault-free run, and a run where one replica is
//! SIGKILLed mid-flight and restarted over its surviving WAL file — the
//! restart goes through `BasilReplica::recover` and real `CatchUpRequest`
//! traffic. Both must complete the workload and pass the same
//! serializability + decision-agreement audit the simulator applies.

use basil_net::supervisor::{run_cluster, KillPlan, SupervisorConfig};
use std::path::PathBuf;

fn node_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_basil-node"))
}

/// A port range unique to this test process; stays clear of the reconnect
/// tests' 21000–29000 window.
fn base_port(offset: u16) -> u16 {
    30000 + (std::process::id() as u16 % 200) * 160 + offset
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("basil-net-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn six_process_cluster_commits_and_audits() {
    let cfg = SupervisorConfig {
        node_bin: node_bin(),
        num_clients: 2,
        seed: 42,
        base_port: base_port(0),
        run_ms: 3_000,
        kill: None,
        workdir: workdir("clean"),
        workload: (200, 2, 2),
        executors: 1,
    };
    let outcome = run_cluster(&cfg).expect("cluster runs to completion");
    assert_eq!(outcome.replicas.len(), 6, "all six replicas reported");
    assert_eq!(outcome.clients.len(), 2, "all clients reported");
    let committed = outcome.total_committed();
    assert!(committed > 0, "clients committed over real TCP");
    outcome.audit().expect("history is serializable and agreed");
    // Replicas actually persisted: the WAL carries at least the committed
    // transactions' prepare/decision/apply records.
    let wal_appends: u64 = outcome.replicas.values().map(|r| r.wal_appends).sum();
    assert!(wal_appends > 0, "real WAL files got records");
    let _ = std::fs::remove_dir_all(&cfg.workdir);
}

#[test]
fn executor_pool_cluster_commits_and_audits() {
    // The multicore replica path: every replica runs the concurrent
    // sharded store behind a two-worker executor pool
    // (`BasilConfig::replica_executors(2)`), with the runtime's burst
    // prefetch feeding ST1s to the pool. The history must pass exactly the
    // audit the inline path passes.
    let cfg = SupervisorConfig {
        node_bin: node_bin(),
        num_clients: 2,
        seed: 43,
        base_port: base_port(140),
        run_ms: 3_000,
        kill: None,
        workdir: workdir("exec"),
        workload: (200, 2, 2),
        executors: 2,
    };
    let outcome = run_cluster(&cfg).expect("executor-pool cluster runs to completion");
    assert_eq!(outcome.replicas.len(), 6, "all six replicas reported");
    let committed = outcome.total_committed();
    assert!(committed > 0, "clients committed against pooled replicas");
    outcome
        .audit()
        .expect("pooled history is serializable and agreed");
    let wal_appends: u64 = outcome.replicas.values().map(|r| r.wal_appends).sum();
    assert!(wal_appends > 0, "pooled replicas persisted WAL records");
    let _ = std::fs::remove_dir_all(&cfg.workdir);
}

#[test]
fn sigkill_mid_run_recovers_through_the_real_wal() {
    let victim = 2;
    let cfg = SupervisorConfig {
        node_bin: node_bin(),
        num_clients: 2,
        seed: 77,
        base_port: base_port(110),
        run_ms: 6_000,
        kill: Some(KillPlan {
            replica: victim,
            at_ms: 1_500,
            restart_ms: 2_500,
        }),
        workdir: workdir("kill"),
        workload: (200, 2, 2),
        executors: 1,
    };
    let outcome = run_cluster(&cfg).expect("cluster survives a SIGKILL");
    assert_eq!(
        outcome.replicas.len(),
        6,
        "the victim came back and reported"
    );
    let committed = outcome.total_committed();
    assert!(
        committed > 0,
        "clients kept committing around the crash (no wedged clients)"
    );
    outcome.audit().expect("post-recovery history audits clean");

    let recovered = &outcome.replicas[&victim];
    assert!(
        recovered.catch_up_applied > 0,
        "the restarted process applied peer catch-up certificates \
         (real CatchUpRequest traffic): {recovered:?}"
    );
    // The recovered replica rejoined the history: it holds committed
    // transactions even though its process started with nothing but the
    // WAL file.
    assert!(
        !recovered.committed.is_empty(),
        "recovered replica reconstructed committed state"
    );
    let _ = std::fs::remove_dir_all(&cfg.workdir);
}
