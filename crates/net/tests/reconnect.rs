//! Connection-manager robustness: backoff shape and bounded-queue shedding.
//!
//! The live test points a manager at a port nobody listens on and floods
//! it: the requirement is that the caller never blocks, memory stays
//! bounded (the shed counter grows instead), and once a listener appears
//! delivery resumes — a dead peer degrades throughput, never wedges.

use basil_common::{ClientId, Key, NodeId, ReplicaId, ShardId, Timestamp};
use basil_core::messages::{BasilMsg, CatchUpRequest};
use basil_net::conn::{reconnect_backoff, ConnManager, ConnOptions};
use basil_net::wire::encode_msg;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

#[test]
fn backoff_grows_exponentially_and_caps() {
    let base = Duration::from_millis(10);
    let max = Duration::from_millis(500);
    // Jitter is bounded by half the capped exponential term, so attempt k
    // is at least base*2^k (pre-cap) and at most 1.5x the cap.
    for attempt in 0..10u32 {
        let d = reconnect_backoff(base, max, attempt, 42);
        let floor = std::cmp::min(base * 2u32.pow(attempt), max);
        assert!(d >= floor, "attempt {attempt}: {d:?} under floor {floor:?}");
        assert!(
            d <= max + max / 2,
            "attempt {attempt}: {d:?} over cap+jitter"
        );
    }
    // Far attempts saturate at the cap instead of overflowing.
    let d = reconnect_backoff(base, max, 63, 42);
    assert!(d >= max && d <= max + max / 2);
}

#[test]
fn backoff_is_deterministic_per_seed_and_jittered_across_seeds() {
    let base = Duration::from_millis(10);
    let max = Duration::from_millis(500);
    for attempt in 0..8u32 {
        assert_eq!(
            reconnect_backoff(base, max, attempt, 7),
            reconnect_backoff(base, max, attempt, 7),
            "same inputs, same delay"
        );
    }
    // Different seeds should disagree somewhere (deterministic jitter is
    // still jitter): check a handful of attempts.
    let differs =
        (0..8u32).any(|a| reconnect_backoff(base, max, a, 1) != reconnect_backoff(base, max, a, 2));
    assert!(differs, "jitter never varied across seeds");
}

fn localhost(port: u16) -> SocketAddr {
    SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), port)
}

/// Ports picked per-process to avoid collisions with parallel test runs.
fn test_ports(offset: u16) -> (u16, u16) {
    let base = 21000 + (std::process::id() as u16 % 2000) * 2 + offset;
    (base, base + 1)
}

#[test]
fn refused_peer_sheds_without_blocking() {
    let (my_port, peer_port) = test_ports(0);
    let me = NodeId::Replica(ReplicaId::new(ShardId(0), 0));
    let peer = NodeId::Replica(ReplicaId::new(ShardId(0), 1));
    let mut addrs = HashMap::new();
    addrs.insert(peer, localhost(peer_port)); // nobody listens there
    let opts = ConnOptions {
        outbound_queue: 4,
        connect_timeout: Duration::from_millis(50),
        read_timeout: Duration::from_millis(20),
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(50),
    };
    let (mgr, _inbound) = ConnManager::start(localhost(my_port), addrs, opts, 1).unwrap();

    let frame = encode_msg(
        me,
        &BasilMsg::RtsRelease {
            key: Key::new("x"),
            ts: Timestamp::from_nanos(1, ClientId(0)),
        },
    )
    .unwrap();

    // Flood far past the queue bound. Every call must return immediately.
    let started = Instant::now();
    for _ in 0..500 {
        mgr.send_frame(peer, frame.clone());
    }
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "send_frame blocked on a dead peer"
    );

    // Give the writer thread time to burn a few connect attempts.
    std::thread::sleep(Duration::from_millis(300));
    let stats = mgr.stats();
    let shed = stats.frames_shed.load(Ordering::Relaxed);
    let reconnects = stats.reconnect_attempts.load(Ordering::Relaxed);
    assert!(shed > 400, "queue bound sheds the flood (shed={shed})");
    assert!(
        reconnects >= 2,
        "writer kept retrying with backoff (attempts={reconnects})"
    );
    assert_eq!(stats.frames_sent.load(Ordering::Relaxed), 0);
    mgr.shutdown();
}

#[test]
fn delivery_resumes_once_the_peer_appears() {
    let (my_port, peer_port) = test_ports(4000);
    let sender_node = NodeId::Client(ClientId(3));
    let peer = NodeId::Replica(ReplicaId::new(ShardId(0), 1));
    let mut addrs = HashMap::new();
    addrs.insert(peer, localhost(peer_port));
    let opts = ConnOptions {
        outbound_queue: 64,
        connect_timeout: Duration::from_millis(50),
        read_timeout: Duration::from_millis(20),
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(40),
    };
    let (mgr, _inbound) = ConnManager::start(localhost(my_port), addrs, opts.clone(), 2).unwrap();
    let frame = encode_msg(
        sender_node,
        &BasilMsg::CatchUpRequest(CatchUpRequest {
            from: ReplicaId::new(ShardId(0), 1),
        }),
    )
    .unwrap();

    // Phase 1: peer is down; a few sends get shed through the backoff path.
    for _ in 0..5 {
        mgr.send_frame(peer, frame.clone());
        std::thread::sleep(Duration::from_millis(20));
    }

    // Phase 2: the peer comes up — as its own ConnManager, so this also
    // exercises the real reader path end to end.
    let (peer_mgr, peer_inbound) =
        ConnManager::start(localhost(peer_port), HashMap::new(), opts, 3).unwrap();

    // Keep sending; the writer's next successful reconnect delivers.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut delivered = None;
    while Instant::now() < deadline {
        mgr.send_frame(peer, frame.clone());
        if let Ok((from, msg)) = peer_inbound.recv_timeout(Duration::from_millis(50)) {
            delivered = Some((from, msg));
            break;
        }
    }
    let (from, msg) = delivered.expect("delivery resumed after the peer appeared");
    assert_eq!(from, sender_node);
    assert!(matches!(msg, BasilMsg::CatchUpRequest(_)));
    assert!(mgr.stats().frames_sent.load(Ordering::Relaxed) >= 1);
    mgr.shutdown();
    peer_mgr.shutdown();
}
