//! Wire codec round-trips and rejection paths.
//!
//! Round-trip equality is checked by re-encoding: the codec is
//! deterministic, so `encode(decode(encode(m))) == encode(m)` pins every
//! field without requiring `PartialEq` on the message types. The rejection
//! tests pin the codec's totality: truncation, oversized lengths, flipped
//! bytes, unknown tags, and absurd nesting are all typed errors.

use basil_common::{ClientId, Key, NodeId, ReplicaId, ShardId, Timestamp, TxId, Value};
use basil_core::certs::{AbortCert, CommitCert, DecisionCert, ShardVotes, VoteCert};
use basil_core::messages::{
    BasilMsg, CatchUpReply, CatchUpRequest, ClientTimer, CommittedRead, DecFb, ElectFbBody,
    InvokeFb, PreparedRead, ProtoDecision, ProtoVote, ReadReply, ReadReplyBody, ReadRequest,
    ReplicaTimer, SignedElectFb, SignedSt1Reply, SignedSt2Reply, St1, St1ReplyBody, St2,
    St2ReplyBody, Writeback,
};
use basil_crypto::{BatchProof, Digest, MerkleProof, Signature};
use basil_net::wire::{
    decode_frame_payload, encode_msg, split_frame, FrameReader, WireError, FRAME_HEADER, MAX_FRAME,
};
use basil_store::TransactionBuilder;
use std::sync::Arc;

fn ts(t: u64, c: u64) -> Timestamp {
    Timestamp::from_nanos(t, ClientId(c))
}

fn rep(i: u32) -> ReplicaId {
    ReplicaId::new(ShardId(0), i)
}

fn tx(t: u64) -> Arc<basil_store::Transaction> {
    let mut b = TransactionBuilder::new(ts(t, 7));
    b.record_write(Key::new(format!("k{t}")), Value::from_u64(t));
    b.build_shared()
}

fn proof(signer: NodeId, fill: u8) -> BatchProof {
    BatchProof {
        root: Digest([fill; 32]),
        root_signature: Signature {
            signer,
            tag: Digest([fill.wrapping_add(1); 32]),
        },
        inclusion: MerkleProof {
            leaf_index: 3,
            leaf_count: 8,
            siblings: vec![Some(Digest([fill.wrapping_add(2); 32])), None],
        },
        batch_size: 8,
    }
}

fn st1_vote(i: u32, vote: ProtoVote, conflict: Option<Arc<DecisionCert>>) -> SignedSt1Reply {
    SignedSt1Reply {
        body: St1ReplyBody {
            txid: TxId::from_bytes([i as u8; 32]),
            replica: rep(i),
            vote,
        },
        proof: Some(proof(NodeId::Replica(rep(i)), i as u8)),
        conflict,
    }
}

fn st2_reply(i: u32) -> SignedSt2Reply {
    SignedSt2Reply {
        body: St2ReplyBody {
            txid: TxId::from_bytes([9; 32]),
            replica: rep(i),
            decision: ProtoDecision::Commit,
            view_decision: 0,
            view_current: 1,
        },
        proof: Some(proof(NodeId::Replica(rep(i)), 40 + i as u8)),
    }
}

fn commit_cert() -> DecisionCert {
    DecisionCert::Commit(CommitCert {
        txid: TxId::from_bytes([9; 32]),
        fast_votes: vec![ShardVotes {
            txid: TxId::from_bytes([9; 32]),
            shard: ShardId(0),
            decision: ProtoDecision::Commit,
            votes: (0..3)
                .map(|i| st1_vote(i, ProtoVote::Commit, None))
                .collect(),
            conflict: None,
        }],
        slow: Some(VoteCert {
            txid: TxId::from_bytes([9; 32]),
            shard: ShardId(0),
            decision: ProtoDecision::Commit,
            view: 1,
            replies: (0..2).map(st2_reply).collect(),
        }),
    })
}

/// Every wire-encodable message variant, with nested certificates and
/// proofs present wherever the type allows them.
fn representative_messages() -> Vec<BasilMsg> {
    let client = NodeId::Client(ClientId(4));
    vec![
        BasilMsg::Read(ReadRequest {
            req_id: 17,
            key: Key::new("user42"),
            ts: ts(1_000, 4),
            auth: Some(proof(client, 1)),
        }),
        BasilMsg::ReadReply(ReadReply {
            body: ReadReplyBody {
                req_id: 17,
                key: Key::new("user42"),
                committed: Some(CommittedRead {
                    version: ts(900, 2),
                    value: Value::from_u64(5),
                    txid: TxId::from_bytes([9; 32]),
                    cert: Some(Arc::new(commit_cert())),
                }),
                prepared: Some(PreparedRead { tx: tx(950) }),
            },
            proof: Some(proof(NodeId::Replica(rep(0)), 2)),
        }),
        BasilMsg::St1(St1 {
            tx: tx(1_000),
            auth: Some(proof(client, 3)),
            recovery: true,
        }),
        BasilMsg::St1Reply(st1_vote(2, ProtoVote::Abort, Some(Arc::new(commit_cert())))),
        BasilMsg::St2(St2 {
            txid: TxId::from_bytes([9; 32]),
            decision: ProtoDecision::Commit,
            shard_votes: vec![ShardVotes {
                txid: TxId::from_bytes([9; 32]),
                shard: ShardId(0),
                decision: ProtoDecision::Commit,
                votes: (0..4)
                    .map(|i| st1_vote(i, ProtoVote::Commit, None))
                    .collect(),
                conflict: None,
            }],
            view: 0,
            auth: Some(proof(client, 5)),
        }),
        BasilMsg::St2Reply(st2_reply(1)),
        BasilMsg::Writeback(Writeback {
            cert: Arc::new(commit_cert()),
            tx: Some(tx(1_000)),
        }),
        BasilMsg::RtsRelease {
            key: Key::new("user42"),
            ts: ts(1_000, 4),
        },
        BasilMsg::InvokeFb(InvokeFb {
            txid: TxId::from_bytes([9; 32]),
            views: (0..3).map(st2_reply).collect(),
            auth: Some(proof(client, 6)),
        }),
        BasilMsg::ElectFb(SignedElectFb {
            body: ElectFbBody {
                txid: TxId::from_bytes([9; 32]),
                replica: rep(3),
                decision: Some(ProtoDecision::Abort),
                view: 2,
            },
            proof: Some(proof(NodeId::Replica(rep(3)), 7)),
        }),
        BasilMsg::DecFb(DecFb {
            txid: TxId::from_bytes([9; 32]),
            decision: ProtoDecision::Commit,
            view: 2,
            elect_proof: vec![SignedElectFb {
                body: ElectFbBody {
                    txid: TxId::from_bytes([9; 32]),
                    replica: rep(0),
                    decision: None,
                    view: 2,
                },
                proof: None,
            }],
            auth: None,
        }),
        BasilMsg::CatchUpRequest(CatchUpRequest { from: rep(2) }),
        BasilMsg::CatchUpReply(CatchUpReply {
            from: rep(1),
            entries: vec![
                (Arc::new(commit_cert()), Some(tx(1_000))),
                (
                    Arc::new(DecisionCert::Abort(AbortCert {
                        txid: TxId::from_bytes([8; 32]),
                        fast_votes: Some(ShardVotes {
                            txid: TxId::from_bytes([8; 32]),
                            shard: ShardId(0),
                            decision: ProtoDecision::Abort,
                            votes: vec![st1_vote(0, ProtoVote::Abort, None)],
                            conflict: Some(Arc::new(commit_cert())),
                        }),
                        slow: None,
                    })),
                    None,
                ),
            ],
        }),
    ]
}

#[test]
fn every_variant_round_trips_byte_identically() {
    let from = NodeId::Client(ClientId(4));
    for msg in representative_messages() {
        let frame = encode_msg(from, &msg).expect("wire variants encode");
        let (payload, consumed) = split_frame(&frame)
            .expect("own frames verify")
            .expect("complete frame");
        assert_eq!(consumed, frame.len(), "one frame, fully consumed");
        let (decoded_from, decoded) = decode_frame_payload(payload).expect("own payloads decode");
        assert_eq!(decoded_from, from);
        let reencoded = encode_msg(from, &decoded).expect("decoded messages re-encode");
        assert_eq!(
            reencoded, frame,
            "canonical: decode then encode is identity"
        );
    }
}

#[test]
fn replica_sender_round_trips() {
    let from = NodeId::Replica(rep(5));
    let msg = BasilMsg::St1Reply(st1_vote(5, ProtoVote::Commit, None));
    let frame = encode_msg(from, &msg).unwrap();
    let (payload, _) = split_frame(&frame).unwrap().unwrap();
    let (decoded_from, _) = decode_frame_payload(payload).unwrap();
    assert_eq!(decoded_from, from);
}

#[test]
fn timer_variants_are_not_wire_messages() {
    let from = NodeId::Client(ClientId(0));
    let client_timer = BasilMsg::ClientTimer(ClientTimer::RetryBackoff);
    let replica_timer = BasilMsg::ReplicaTimer(ReplicaTimer::BatchFlush);
    assert_eq!(
        encode_msg(from, &client_timer),
        Err(WireError::NotWireMessage)
    );
    assert_eq!(
        encode_msg(from, &replica_timer),
        Err(WireError::NotWireMessage)
    );
}

#[test]
fn partial_frames_wait_for_more_bytes() {
    let from = NodeId::Client(ClientId(4));
    let msg = BasilMsg::RtsRelease {
        key: Key::new("user1"),
        ts: ts(5, 4),
    };
    let frame = encode_msg(from, &msg).unwrap();
    // Every strict prefix is "need more bytes", never an error: stream
    // reads may split frames anywhere.
    for cut in 0..frame.len() {
        assert_eq!(
            split_frame(&frame[..cut]).expect("prefixes are not errors"),
            None,
            "prefix of {cut} bytes should wait"
        );
    }
}

#[test]
fn corrupt_checksum_is_rejected() {
    let from = NodeId::Client(ClientId(4));
    let msg = BasilMsg::RtsRelease {
        key: Key::new("user1"),
        ts: ts(5, 4),
    };
    let mut frame = encode_msg(from, &msg).unwrap();
    let last = frame.len() - 1;
    frame[last] ^= 0x40;
    assert_eq!(split_frame(&frame), Err(WireError::ChecksumMismatch));
}

#[test]
fn oversized_length_is_rejected_before_allocation() {
    let mut header = vec![0u8; FRAME_HEADER];
    header[..4].copy_from_slice(&((MAX_FRAME as u32) + 1).to_be_bytes());
    match split_frame(&header) {
        Err(WireError::Oversized { len }) => assert_eq!(len, MAX_FRAME + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn truncated_payload_is_a_typed_error() {
    let from = NodeId::Client(ClientId(4));
    for msg in representative_messages() {
        let frame = encode_msg(from, &msg).unwrap();
        let payload = &frame[FRAME_HEADER..];
        // Chop the payload anywhere: decode must fail cleanly, not panic.
        for cut in [1usize, payload.len() / 2, payload.len() - 1] {
            let cut = cut.min(payload.len() - 1);
            assert!(
                decode_frame_payload(&payload[..cut]).is_err(),
                "truncated payload decoded"
            );
        }
    }
}

#[test]
fn unknown_tags_are_rejected() {
    // Unknown message tag.
    assert!(matches!(
        decode_frame_payload(&[200, 1, 0, 0, 0, 0, 0, 0, 0, 4]),
        Err(WireError::BadTag { tag: 200 })
    ));
    // Unknown node tag.
    assert!(matches!(
        decode_frame_payload(&[1, 7]),
        Err(WireError::BadTag { tag: 7 })
    ));
}

#[test]
fn flipped_bytes_never_panic_the_decoder() {
    let from = NodeId::Client(ClientId(4));
    for msg in representative_messages() {
        let frame = encode_msg(from, &msg).unwrap();
        let payload = frame[FRAME_HEADER..].to_vec();
        // Flip each byte in turn (checksum already stripped: this attacks
        // the payload decoder directly). Any result is fine except a panic,
        // and a changed first byte must not decode as the original tag.
        for at in 0..payload.len() {
            let mut bad = payload.clone();
            bad[at] ^= 0xA5;
            let _ = decode_frame_payload(&bad);
        }
    }
}

#[test]
fn absurd_cert_nesting_is_rejected() {
    // Build conflict evidence nested deeper than MAX_CERT_DEPTH: each
    // level is an abort cert whose fast votes carry a conflict cert.
    fn nested(depth: usize) -> Arc<DecisionCert> {
        let conflict = if depth == 0 {
            None
        } else {
            Some(nested(depth - 1))
        };
        Arc::new(DecisionCert::Abort(AbortCert {
            txid: TxId::from_bytes([depth as u8; 32]),
            fast_votes: Some(ShardVotes {
                txid: TxId::from_bytes([depth as u8; 32]),
                shard: ShardId(0),
                decision: ProtoDecision::Abort,
                votes: vec![SignedSt1Reply {
                    body: St1ReplyBody {
                        txid: TxId::from_bytes([depth as u8; 32]),
                        replica: rep(0),
                        vote: ProtoVote::Abort,
                    },
                    proof: None,
                    conflict,
                }],
                conflict: None,
            }),
            slow: None,
        }))
    }
    let from = NodeId::Client(ClientId(0));
    let deep = BasilMsg::Writeback(Writeback {
        cert: nested(12),
        tx: None,
    });
    let frame = encode_msg(from, &deep).expect("encoding does not recurse-check");
    let (payload, _) = split_frame(&frame).unwrap().unwrap();
    assert!(matches!(
        decode_frame_payload(payload),
        Err(WireError::CertTooDeep)
    ));

    // A realistically nested certificate (depth 3) still decodes.
    let shallow = BasilMsg::Writeback(Writeback {
        cert: nested(3),
        tx: None,
    });
    let frame = encode_msg(from, &shallow).unwrap();
    let (payload, _) = split_frame(&frame).unwrap().unwrap();
    assert!(decode_frame_payload(payload).is_ok());
}

#[test]
fn frame_reader_reassembles_byte_by_byte() {
    let from = NodeId::Replica(rep(1));
    let msgs = vec![
        BasilMsg::CatchUpRequest(CatchUpRequest { from: rep(1) }),
        BasilMsg::St1Reply(st1_vote(1, ProtoVote::Commit, None)),
        BasilMsg::RtsRelease {
            key: Key::new("user9"),
            ts: ts(44, 2),
        },
    ];
    let mut stream = Vec::new();
    for m in &msgs {
        stream.extend_from_slice(&encode_msg(from, m).unwrap());
    }
    let mut reader = FrameReader::new();
    let mut decoded = Vec::new();
    for byte in stream {
        reader.extend(&[byte]);
        while let Some((f, m)) = reader.next_msg().expect("clean stream") {
            assert_eq!(f, from);
            decoded.push(m);
        }
    }
    assert_eq!(decoded.len(), msgs.len());
    assert_eq!(reader.buffered(), 0, "no leftover bytes");
    for (original, roundtripped) in msgs.iter().zip(&decoded) {
        assert_eq!(
            encode_msg(from, original).unwrap(),
            encode_msg(from, roundtripped).unwrap()
        );
    }
}

#[test]
fn frame_reader_poisons_on_first_bad_frame() {
    let from = NodeId::Replica(rep(1));
    let good = encode_msg(
        from,
        &BasilMsg::CatchUpRequest(CatchUpRequest { from: rep(1) }),
    )
    .unwrap();
    let mut corrupt = good.clone();
    corrupt[FRAME_HEADER] ^= 0xFF; // payload byte: checksum now mismatches
    let mut reader = FrameReader::new();
    reader.extend(&good);
    reader.extend(&corrupt);
    assert!(reader.next_msg().expect("first frame is clean").is_some());
    assert!(reader.next_msg().is_err(), "corrupt frame is an error");
}
