//! `basil-node`: one Basil participant as an OS process.
//!
//! Runs the unmodified `BasilReplica` or `BasilClient` state machine from
//! `basil-core` over localhost TCP (see `basil_net`). Launched by the
//! supervisor harness or by hand:
//!
//! ```text
//! basil-node --role replica --who 0 --clients 2 --seed 42 \
//!   --base-port 4600 --epoch-nanos <unix-nanos> --duration-ms 2000 \
//!   --wal /tmp/replica-0.wal --results /tmp/replica-0.results
//! ```
//!
//! Exits 0 after writing the results file; exits 2 on a usage error.

use basil_net::node::{run_node, NodeConfig, Role};
use std::path::PathBuf;

fn usage(err: &str) -> ! {
    eprintln!("basil-node: {err}");
    eprintln!(
        "usage: basil-node --role replica|client --who N --clients N --seed N \
         --base-port N --epoch-nanos N --duration-ms N [--wal PATH] --results PATH \
         [--keys N] [--reads N] [--writes N] [--executors N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut role: Option<String> = None;
    let mut who: Option<u64> = None;
    let mut clients: Option<u32> = None;
    let mut seed: u64 = 42;
    let mut base_port: Option<u16> = None;
    let mut epoch_nanos: Option<u64> = None;
    let mut duration_ms: u64 = 2_000;
    let mut wal: Option<PathBuf> = None;
    let mut results: Option<PathBuf> = None;
    let mut keys: u64 = 1_000;
    let mut reads: usize = 2;
    let mut writes: usize = 2;
    // 1 = inline (the default): the serial store, no pool. 0 = auto-size
    // from the host's cores; N >= 2 = a pool of N executor threads.
    let mut executors: usize = 1;

    while let Some(flag) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--role" => role = Some(value("--role")),
            "--who" => who = value("--who").parse().ok(),
            "--clients" => clients = value("--clients").parse().ok(),
            "--seed" => seed = value("--seed").parse().unwrap_or(42),
            "--base-port" => base_port = value("--base-port").parse().ok(),
            "--epoch-nanos" => epoch_nanos = value("--epoch-nanos").parse().ok(),
            "--duration-ms" => duration_ms = value("--duration-ms").parse().unwrap_or(2_000),
            "--wal" => wal = Some(PathBuf::from(value("--wal"))),
            "--results" => results = Some(PathBuf::from(value("--results"))),
            "--keys" => keys = value("--keys").parse().unwrap_or(1_000),
            "--reads" => reads = value("--reads").parse().unwrap_or(2),
            "--writes" => writes = value("--writes").parse().unwrap_or(2),
            "--executors" => executors = value("--executors").parse().unwrap_or(1),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let who = who.unwrap_or_else(|| usage("--who is required"));
    let role = match role.as_deref() {
        Some("replica") => Role::Replica { index: who as u32 },
        Some("client") => Role::Client { id: who },
        _ => usage("--role must be replica or client"),
    };
    let cfg = NodeConfig {
        role,
        num_clients: clients.unwrap_or_else(|| usage("--clients is required")),
        seed,
        base_port: base_port.unwrap_or_else(|| usage("--base-port is required")),
        epoch_unix_nanos: epoch_nanos.unwrap_or_else(|| usage("--epoch-nanos is required")),
        duration_ms,
        wal_path: wal,
        results_path: results.unwrap_or_else(|| usage("--results is required")),
        keys,
        reads,
        writes,
        executors,
    };
    if let Err(e) = run_node(&cfg) {
        eprintln!("basil-node: {e}");
        std::process::exit(1);
    }
}
