//! The wire codec: every [`BasilMsg`] as a length-prefixed, checksummed
//! frame.
//!
//! Frame layout mirrors the WAL (`basil_store::wal`):
//!
//! ```text
//! [u32 be payload_len][4-byte SHA-256(payload) prefix][payload]
//! ```
//!
//! and the payload is `[msg tag][sender NodeId][message body]`. Transaction
//! bodies reuse the memoized canonical encoding ([`Transaction::encoded`]),
//! so encoding an `ST1` fan-out serializes the transaction once; decoding
//! goes through [`Transaction::decode`], the same parser the signature path
//! trusts.
//!
//! Decoding is total: every failure — truncated frame, oversized length,
//! checksum mismatch, unknown tag, counts pointing past the buffer, invalid
//! UTF-8 in a key, certificate nesting beyond [`MAX_CERT_DEPTH`] — returns a
//! typed [`WireError`], never a panic. A malformed frame is evidence of a
//! faulty peer, and the connection manager treats it as such (drop the
//! connection, count it); it must never be able to take the process down.

use basil_common::{ClientId, Key, NodeId, ReplicaId, ShardId, Timestamp, TxId, Value};
use basil_core::certs::{AbortCert, CommitCert, DecisionCert, ShardVotes, VoteCert};
use basil_core::messages::{
    BasilMsg, CatchUpReply, CatchUpRequest, CommittedRead, DecFb, ElectFbBody, InvokeFb,
    PreparedRead, ProtoDecision, ProtoVote, ReadReply, ReadReplyBody, ReadRequest, SignedElectFb,
    SignedSt1Reply, SignedSt2Reply, St1, St1ReplyBody, St2, St2ReplyBody, Writeback,
};
use basil_crypto::{BatchProof, Digest, MerkleProof, Sha256, Signature};
use basil_store::Transaction;
use std::sync::Arc;

/// Frame header: 4-byte big-endian payload length + 4-byte checksum prefix.
pub const FRAME_HEADER: usize = 8;

/// Hard ceiling on a single frame's payload. Anything larger is rejected
/// before allocation — a peer cannot make us reserve gigabytes by sending
/// eight bytes.
pub const MAX_FRAME: usize = 4 * 1024 * 1024;

/// Maximum [`DecisionCert`] nesting depth accepted by the decoder. Conflict
/// evidence inside ST1 abort votes nests certificates recursively; honest
/// traffic is depth 2–3, so 8 leaves headroom while bounding stack use
/// against a Byzantine sender.
pub const MAX_CERT_DEPTH: usize = 8;

/// Why a frame or payload failed to decode (or a message failed to encode).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the header or the advertised payload length.
    Truncated,
    /// Advertised payload length exceeds [`MAX_FRAME`].
    Oversized {
        /// The advertised length.
        len: usize,
    },
    /// Checksum prefix does not match the payload.
    ChecksumMismatch,
    /// Unknown message, node, vote, or option tag byte.
    BadTag {
        /// The offending byte.
        tag: u8,
    },
    /// A length or count field points past the end of the buffer.
    BadLength,
    /// A key was not valid UTF-8.
    BadKey,
    /// An embedded transaction failed canonical decoding.
    BadTransaction,
    /// Certificate nesting exceeded [`MAX_CERT_DEPTH`].
    CertTooDeep,
    /// Node-local timer variants are never wire-encoded.
    NotWireMessage,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized { len } => write!(f, "oversized frame ({len} bytes)"),
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            WireError::BadTag { tag } => write!(f, "unknown tag byte {tag}"),
            WireError::BadLength => write!(f, "length field exceeds buffer"),
            WireError::BadKey => write!(f, "key is not valid UTF-8"),
            WireError::BadTransaction => write!(f, "embedded transaction failed to decode"),
            WireError::CertTooDeep => write!(f, "certificate nesting too deep"),
            WireError::NotWireMessage => write!(f, "timer messages are node-local"),
        }
    }
}

impl std::error::Error for WireError {}

// Message tag bytes. Timers are deliberately absent: they never leave a node.
const TAG_READ: u8 = 1;
const TAG_READ_REPLY: u8 = 2;
const TAG_ST1: u8 = 3;
const TAG_ST1_REPLY: u8 = 4;
const TAG_ST2: u8 = 5;
const TAG_ST2_REPLY: u8 = 6;
const TAG_WRITEBACK: u8 = 7;
const TAG_RTS_RELEASE: u8 = 8;
const TAG_INVOKE_FB: u8 = 9;
const TAG_ELECT_FB: u8 = 10;
const TAG_DEC_FB: u8 = 11;
const TAG_CATCH_UP_REQUEST: u8 = 12;
const TAG_CATCH_UP_REPLY: u8 = 13;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encodes `msg` from `from` as one complete frame (header + payload).
///
/// Fails only for the node-local timer variants, which must never reach the
/// network layer.
pub fn encode_msg(from: NodeId, msg: &BasilMsg) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::with_capacity(128);
    payload.push(0); // message tag, patched below
    put_node(&mut payload, from);
    let tag = match msg {
        BasilMsg::Read(m) => {
            payload.extend_from_slice(&m.req_id.to_be_bytes());
            put_key(&mut payload, &m.key);
            put_ts(&mut payload, m.ts);
            put_opt(&mut payload, m.auth.as_ref(), put_batch_proof);
            TAG_READ
        }
        BasilMsg::ReadReply(m) => {
            put_read_reply(&mut payload, m);
            TAG_READ_REPLY
        }
        BasilMsg::St1(m) => {
            put_tx(&mut payload, &m.tx);
            put_opt(&mut payload, m.auth.as_ref(), put_batch_proof);
            payload.push(m.recovery as u8);
            TAG_ST1
        }
        BasilMsg::St1Reply(m) => {
            put_st1_reply(&mut payload, m);
            TAG_ST1_REPLY
        }
        BasilMsg::St2(m) => {
            payload.extend_from_slice(m.txid.as_bytes());
            put_decision(&mut payload, m.decision);
            put_vec(&mut payload, &m.shard_votes, put_shard_votes);
            payload.extend_from_slice(&m.view.to_be_bytes());
            put_opt(&mut payload, m.auth.as_ref(), put_batch_proof);
            TAG_ST2
        }
        BasilMsg::St2Reply(m) => {
            put_st2_reply(&mut payload, m);
            TAG_ST2_REPLY
        }
        BasilMsg::Writeback(m) => {
            put_cert(&mut payload, &m.cert);
            put_opt(&mut payload, m.tx.as_deref(), |out, tx| {
                put_tx_ref(out, tx);
            });
            TAG_WRITEBACK
        }
        BasilMsg::RtsRelease { key, ts } => {
            put_key(&mut payload, key);
            put_ts(&mut payload, *ts);
            TAG_RTS_RELEASE
        }
        BasilMsg::InvokeFb(m) => {
            payload.extend_from_slice(m.txid.as_bytes());
            put_vec(&mut payload, &m.views, put_st2_reply);
            put_opt(&mut payload, m.auth.as_ref(), put_batch_proof);
            TAG_INVOKE_FB
        }
        BasilMsg::ElectFb(m) => {
            put_elect_fb(&mut payload, m);
            TAG_ELECT_FB
        }
        BasilMsg::DecFb(m) => {
            payload.extend_from_slice(m.txid.as_bytes());
            put_decision(&mut payload, m.decision);
            payload.extend_from_slice(&m.view.to_be_bytes());
            put_vec(&mut payload, &m.elect_proof, put_elect_fb);
            put_opt(&mut payload, m.auth.as_ref(), put_batch_proof);
            TAG_DEC_FB
        }
        BasilMsg::CatchUpRequest(m) => {
            put_replica(&mut payload, m.from);
            TAG_CATCH_UP_REQUEST
        }
        BasilMsg::CatchUpReply(m) => {
            put_replica(&mut payload, m.from);
            put_vec(&mut payload, &m.entries, |out, (cert, tx)| {
                put_cert(out, cert);
                put_opt(out, tx.as_deref(), put_tx_ref);
            });
            TAG_CATCH_UP_REPLY
        }
        BasilMsg::ClientTimer(_) | BasilMsg::ReplicaTimer(_) => {
            return Err(WireError::NotWireMessage)
        }
    };
    payload[0] = tag;
    Ok(frame(&payload))
}

/// Wraps a payload in the `[len][checksum][payload]` frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut hasher = Sha256::new();
    hasher.update(payload);
    let digest = hasher.finalize();
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&digest.as_bytes()[..4]);
    out.extend_from_slice(payload);
    out
}

fn put_node(out: &mut Vec<u8>, node: NodeId) {
    match node {
        NodeId::Client(c) => {
            out.push(1);
            out.extend_from_slice(&c.0.to_be_bytes());
        }
        NodeId::Replica(r) => {
            out.push(2);
            out.extend_from_slice(&r.shard.0.to_be_bytes());
            out.extend_from_slice(&r.index.to_be_bytes());
        }
    }
}

fn put_replica(out: &mut Vec<u8>, r: ReplicaId) {
    out.extend_from_slice(&r.shard.0.to_be_bytes());
    out.extend_from_slice(&r.index.to_be_bytes());
}

fn put_ts(out: &mut Vec<u8>, ts: Timestamp) {
    out.extend_from_slice(&ts.time.to_be_bytes());
    out.extend_from_slice(&ts.client.0.to_be_bytes());
}

fn put_key(out: &mut Vec<u8>, key: &Key) {
    out.extend_from_slice(&(key.len() as u32).to_be_bytes());
    out.extend_from_slice(key.as_bytes());
}

fn put_value(out: &mut Vec<u8>, value: &Value) {
    out.extend_from_slice(&(value.len() as u32).to_be_bytes());
    out.extend_from_slice(value.as_bytes());
}

fn put_opt<T>(out: &mut Vec<u8>, v: Option<&T>, put: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        Some(v) => {
            out.push(1);
            put(out, v);
        }
        None => out.push(0),
    }
}

fn put_vec<T>(out: &mut Vec<u8>, items: &[T], mut put: impl FnMut(&mut Vec<u8>, &T)) {
    out.extend_from_slice(&(items.len() as u32).to_be_bytes());
    for item in items {
        put(out, item);
    }
}

fn put_vote(out: &mut Vec<u8>, vote: &ProtoVote) {
    // ProtoVote::tag() is private to basil-core; the wire mapping is this
    // crate's own contract (and happens to agree: 1 = Commit, 2 = Abort).
    out.push(match vote {
        ProtoVote::Commit => 1,
        ProtoVote::Abort => 2,
    });
}

fn put_decision(out: &mut Vec<u8>, d: ProtoDecision) {
    out.push(match d {
        ProtoDecision::Commit => 1,
        ProtoDecision::Abort => 2,
    });
}

fn put_signature(out: &mut Vec<u8>, sig: &Signature) {
    put_node(out, sig.signer);
    out.extend_from_slice(sig.tag.as_bytes());
}

fn put_merkle_proof(out: &mut Vec<u8>, p: &MerkleProof) {
    out.extend_from_slice(&(p.leaf_index as u32).to_be_bytes());
    out.extend_from_slice(&(p.leaf_count as u32).to_be_bytes());
    put_vec(out, &p.siblings, |out, sib| {
        put_opt(out, sib.as_ref(), |out, d| {
            out.extend_from_slice(d.as_bytes())
        });
    });
}

fn put_batch_proof(out: &mut Vec<u8>, p: &BatchProof) {
    out.extend_from_slice(p.root.as_bytes());
    put_signature(out, &p.root_signature);
    put_merkle_proof(out, &p.inclusion);
    out.extend_from_slice(&(p.batch_size as u32).to_be_bytes());
}

fn put_tx(out: &mut Vec<u8>, tx: &Arc<Transaction>) {
    put_tx_ref(out, tx);
}

fn put_tx_ref(out: &mut Vec<u8>, tx: &Transaction) {
    let encoded = tx.encoded();
    out.extend_from_slice(&(encoded.len() as u32).to_be_bytes());
    out.extend_from_slice(encoded);
}

fn put_read_reply(out: &mut Vec<u8>, m: &ReadReply) {
    out.extend_from_slice(&m.body.req_id.to_be_bytes());
    put_key(out, &m.body.key);
    put_opt(out, m.body.committed.as_ref(), |out, c| {
        put_ts(out, c.version);
        put_value(out, &c.value);
        out.extend_from_slice(c.txid.as_bytes());
        put_opt(out, c.cert.as_ref(), |out, cert| put_cert(out, cert));
    });
    put_opt(out, m.body.prepared.as_ref(), |out, p| {
        put_tx(out, &p.tx);
    });
    put_opt(out, m.proof.as_ref(), put_batch_proof);
}

fn put_st1_reply(out: &mut Vec<u8>, m: &SignedSt1Reply) {
    out.extend_from_slice(m.body.txid.as_bytes());
    put_replica(out, m.body.replica);
    put_vote(out, &m.body.vote);
    put_opt(out, m.proof.as_ref(), put_batch_proof);
    put_opt(out, m.conflict.as_ref(), |out, cert| put_cert(out, cert));
}

fn put_st2_reply(out: &mut Vec<u8>, m: &SignedSt2Reply) {
    out.extend_from_slice(m.body.txid.as_bytes());
    put_replica(out, m.body.replica);
    put_decision(out, m.body.decision);
    out.extend_from_slice(&m.body.view_decision.to_be_bytes());
    out.extend_from_slice(&m.body.view_current.to_be_bytes());
    put_opt(out, m.proof.as_ref(), put_batch_proof);
}

fn put_elect_fb(out: &mut Vec<u8>, m: &SignedElectFb) {
    out.extend_from_slice(m.body.txid.as_bytes());
    put_replica(out, m.body.replica);
    put_opt(out, m.body.decision.as_ref(), |out, d| {
        put_decision(out, *d)
    });
    out.extend_from_slice(&m.body.view.to_be_bytes());
    put_opt(out, m.proof.as_ref(), put_batch_proof);
}

fn put_shard_votes(out: &mut Vec<u8>, sv: &ShardVotes) {
    out.extend_from_slice(sv.txid.as_bytes());
    out.extend_from_slice(&sv.shard.0.to_be_bytes());
    put_decision(out, sv.decision);
    put_vec(out, &sv.votes, put_st1_reply);
    put_opt(out, sv.conflict.as_ref(), |out, cert| put_cert(out, cert));
}

fn put_vote_cert(out: &mut Vec<u8>, vc: &VoteCert) {
    out.extend_from_slice(vc.txid.as_bytes());
    out.extend_from_slice(&vc.shard.0.to_be_bytes());
    put_decision(out, vc.decision);
    out.extend_from_slice(&vc.view.to_be_bytes());
    put_vec(out, &vc.replies, put_st2_reply);
}

fn put_cert(out: &mut Vec<u8>, cert: &DecisionCert) {
    match cert {
        DecisionCert::Commit(c) => {
            out.push(1);
            out.extend_from_slice(c.txid.as_bytes());
            put_vec(out, &c.fast_votes, put_shard_votes);
            put_opt(out, c.slow.as_ref(), put_vote_cert);
        }
        DecisionCert::Abort(a) => {
            out.push(2);
            out.extend_from_slice(a.txid.as_bytes());
            put_opt(out, a.fast_votes.as_ref(), put_shard_votes);
            put_opt(out, a.slow.as_ref(), put_vote_cert);
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over a frame payload. Every `take_*` either
/// yields a value or a [`WireError`]; nothing indexes the buffer directly.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A count field that prefixes `count` items of at least `min_item`
    /// bytes each; rejected up front when it cannot fit in the remaining
    /// buffer, so a forged count cannot drive a huge allocation.
    fn take_count(&mut self, min_item: usize) -> Result<usize, WireError> {
        let count = self.take_u32()? as usize;
        if count.saturating_mul(min_item.max(1)) > self.remaining() {
            return Err(WireError::BadLength);
        }
        Ok(count)
    }

    fn take_node(&mut self) -> Result<NodeId, WireError> {
        match self.take_u8()? {
            1 => Ok(NodeId::Client(ClientId(self.take_u64()?))),
            2 => {
                let shard = ShardId(self.take_u32()?);
                let index = self.take_u32()?;
                Ok(NodeId::Replica(ReplicaId::new(shard, index)))
            }
            tag => Err(WireError::BadTag { tag }),
        }
    }

    fn take_replica(&mut self) -> Result<ReplicaId, WireError> {
        let shard = ShardId(self.take_u32()?);
        let index = self.take_u32()?;
        Ok(ReplicaId::new(shard, index))
    }

    fn take_ts(&mut self) -> Result<Timestamp, WireError> {
        let time = self.take_u64()?;
        let client = self.take_u64()?;
        Ok(Timestamp::from_nanos(time, ClientId(client)))
    }

    fn take_txid(&mut self) -> Result<TxId, WireError> {
        let bytes: [u8; 32] = self.take(32)?.try_into().unwrap();
        Ok(TxId::from_bytes(bytes))
    }

    fn take_digest(&mut self) -> Result<Digest, WireError> {
        let bytes: [u8; 32] = self.take(32)?.try_into().unwrap();
        Ok(Digest(bytes))
    }

    fn take_key(&mut self) -> Result<Key, WireError> {
        let len = self.take_u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::BadLength);
        }
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| WireError::BadKey)?;
        Ok(Key::new(s))
    }

    fn take_value(&mut self) -> Result<Value, WireError> {
        let len = self.take_u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::BadLength);
        }
        Ok(Value::new(self.take(len)?))
    }

    fn take_opt<T>(
        &mut self,
        take: impl FnOnce(&mut Self) -> Result<T, WireError>,
    ) -> Result<Option<T>, WireError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(take(self)?)),
            tag => Err(WireError::BadTag { tag }),
        }
    }

    fn take_vote(&mut self) -> Result<ProtoVote, WireError> {
        match self.take_u8()? {
            1 => Ok(ProtoVote::Commit),
            2 => Ok(ProtoVote::Abort),
            tag => Err(WireError::BadTag { tag }),
        }
    }

    fn take_decision(&mut self) -> Result<ProtoDecision, WireError> {
        match self.take_u8()? {
            1 => Ok(ProtoDecision::Commit),
            2 => Ok(ProtoDecision::Abort),
            tag => Err(WireError::BadTag { tag }),
        }
    }

    fn take_signature(&mut self) -> Result<Signature, WireError> {
        let signer = self.take_node()?;
        let tag = self.take_digest()?;
        Ok(Signature { signer, tag })
    }

    fn take_merkle_proof(&mut self) -> Result<MerkleProof, WireError> {
        let leaf_index = self.take_u32()? as usize;
        let leaf_count = self.take_u32()? as usize;
        let n = self.take_count(1)?;
        let mut siblings = Vec::with_capacity(n);
        for _ in 0..n {
            siblings.push(self.take_opt(|r| r.take_digest())?);
        }
        Ok(MerkleProof {
            leaf_index,
            leaf_count,
            siblings,
        })
    }

    fn take_batch_proof(&mut self) -> Result<BatchProof, WireError> {
        let root = self.take_digest()?;
        let root_signature = self.take_signature()?;
        let inclusion = self.take_merkle_proof()?;
        let batch_size = self.take_u32()? as usize;
        Ok(BatchProof {
            root,
            root_signature,
            inclusion,
            batch_size,
        })
    }

    fn take_tx(&mut self) -> Result<Arc<Transaction>, WireError> {
        let len = self.take_u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::BadLength);
        }
        let bytes = self.take(len)?;
        Transaction::decode(bytes)
            .map(Arc::new)
            .ok_or(WireError::BadTransaction)
    }

    fn take_st1_reply(&mut self, depth: usize) -> Result<SignedSt1Reply, WireError> {
        let txid = self.take_txid()?;
        let replica = self.take_replica()?;
        let vote = self.take_vote()?;
        let proof = self.take_opt(|r| r.take_batch_proof())?;
        let conflict = self.take_opt(|r| r.take_cert(depth + 1))?.map(Arc::new);
        Ok(SignedSt1Reply {
            body: St1ReplyBody {
                txid,
                replica,
                vote,
            },
            proof,
            conflict,
        })
    }

    fn take_st2_reply(&mut self) -> Result<SignedSt2Reply, WireError> {
        let txid = self.take_txid()?;
        let replica = self.take_replica()?;
        let decision = self.take_decision()?;
        let view_decision = self.take_u64()?;
        let view_current = self.take_u64()?;
        let proof = self.take_opt(|r| r.take_batch_proof())?;
        Ok(SignedSt2Reply {
            body: St2ReplyBody {
                txid,
                replica,
                decision,
                view_decision,
                view_current,
            },
            proof,
        })
    }

    fn take_elect_fb(&mut self) -> Result<SignedElectFb, WireError> {
        let txid = self.take_txid()?;
        let replica = self.take_replica()?;
        let decision = self.take_opt(|r| r.take_decision())?;
        let view = self.take_u64()?;
        let proof = self.take_opt(|r| r.take_batch_proof())?;
        Ok(SignedElectFb {
            body: ElectFbBody {
                txid,
                replica,
                decision,
                view,
            },
            proof,
        })
    }

    fn take_shard_votes(&mut self, depth: usize) -> Result<ShardVotes, WireError> {
        let txid = self.take_txid()?;
        let shard = ShardId(self.take_u32()?);
        let decision = self.take_decision()?;
        let n = self.take_count(41)?;
        let mut votes = Vec::with_capacity(n);
        for _ in 0..n {
            votes.push(self.take_st1_reply(depth)?);
        }
        let conflict = self.take_opt(|r| r.take_cert(depth + 1))?.map(Arc::new);
        Ok(ShardVotes {
            txid,
            shard,
            decision,
            votes,
            conflict,
        })
    }

    fn take_vote_cert(&mut self) -> Result<VoteCert, WireError> {
        let txid = self.take_txid()?;
        let shard = ShardId(self.take_u32()?);
        let decision = self.take_decision()?;
        let view = self.take_u64()?;
        let n = self.take_count(58)?;
        let mut replies = Vec::with_capacity(n);
        for _ in 0..n {
            replies.push(self.take_st2_reply()?);
        }
        Ok(VoteCert {
            txid,
            shard,
            decision,
            view,
            replies,
        })
    }

    fn take_cert(&mut self, depth: usize) -> Result<DecisionCert, WireError> {
        if depth > MAX_CERT_DEPTH {
            return Err(WireError::CertTooDeep);
        }
        match self.take_u8()? {
            1 => {
                let txid = self.take_txid()?;
                let n = self.take_count(42)?;
                let mut fast_votes = Vec::with_capacity(n);
                for _ in 0..n {
                    fast_votes.push(self.take_shard_votes(depth)?);
                }
                let slow = self.take_opt(|r| r.take_vote_cert())?;
                Ok(DecisionCert::Commit(CommitCert {
                    txid,
                    fast_votes,
                    slow,
                }))
            }
            2 => {
                let txid = self.take_txid()?;
                let fast_votes = self.take_opt(|r| r.take_shard_votes(depth))?;
                let slow = self.take_opt(|r| r.take_vote_cert())?;
                Ok(DecisionCert::Abort(AbortCert {
                    txid,
                    fast_votes,
                    slow,
                }))
            }
            tag => Err(WireError::BadTag { tag }),
        }
    }
}

/// Splits one frame off the front of `buf`, verifying the checksum.
///
/// Returns `Ok(None)` when `buf` holds only a partial frame (read more), or
/// `Ok(Some((payload, consumed)))` with the checksum-verified payload and
/// the total frame size to drain. Oversized and corrupt frames are errors —
/// the caller drops the connection.
pub fn split_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, WireError> {
    if buf.len() < FRAME_HEADER {
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized { len });
    }
    if buf.len() < FRAME_HEADER + len {
        return Ok(None);
    }
    let payload = &buf[FRAME_HEADER..FRAME_HEADER + len];
    let mut hasher = Sha256::new();
    hasher.update(payload);
    if hasher.finalize().as_bytes()[..4] != buf[4..8] {
        return Err(WireError::ChecksumMismatch);
    }
    Ok(Some((payload, FRAME_HEADER + len)))
}

/// Decodes a checksum-verified frame payload into the sender and message.
pub fn decode_frame_payload(payload: &[u8]) -> Result<(NodeId, BasilMsg), WireError> {
    let mut r = Reader::new(payload);
    let tag = r.take_u8()?;
    let from = r.take_node()?;
    let msg = match tag {
        TAG_READ => {
            let req_id = r.take_u64()?;
            let key = r.take_key()?;
            let ts = r.take_ts()?;
            let auth = r.take_opt(|r| r.take_batch_proof())?;
            BasilMsg::Read(ReadRequest {
                req_id,
                key,
                ts,
                auth,
            })
        }
        TAG_READ_REPLY => {
            let req_id = r.take_u64()?;
            let key = r.take_key()?;
            let committed = r.take_opt(|r| {
                let version = r.take_ts()?;
                let value = r.take_value()?;
                let txid = r.take_txid()?;
                let cert = r.take_opt(|r| r.take_cert(0))?.map(Arc::new);
                Ok(CommittedRead {
                    version,
                    value,
                    txid,
                    cert,
                })
            })?;
            let prepared = r.take_opt(|r| Ok(PreparedRead { tx: r.take_tx()? }))?;
            let proof = r.take_opt(|r| r.take_batch_proof())?;
            BasilMsg::ReadReply(ReadReply {
                body: ReadReplyBody {
                    req_id,
                    key,
                    committed,
                    prepared,
                },
                proof,
            })
        }
        TAG_ST1 => {
            let tx = r.take_tx()?;
            let auth = r.take_opt(|r| r.take_batch_proof())?;
            let recovery = match r.take_u8()? {
                0 => false,
                1 => true,
                tag => return Err(WireError::BadTag { tag }),
            };
            BasilMsg::St1(St1 { tx, auth, recovery })
        }
        TAG_ST1_REPLY => BasilMsg::St1Reply(r.take_st1_reply(0)?),
        TAG_ST2 => {
            let txid = r.take_txid()?;
            let decision = r.take_decision()?;
            let n = r.take_count(42)?;
            let mut shard_votes = Vec::with_capacity(n);
            for _ in 0..n {
                shard_votes.push(r.take_shard_votes(0)?);
            }
            let view = r.take_u64()?;
            let auth = r.take_opt(|r| r.take_batch_proof())?;
            BasilMsg::St2(St2 {
                txid,
                decision,
                shard_votes,
                view,
                auth,
            })
        }
        TAG_ST2_REPLY => BasilMsg::St2Reply(r.take_st2_reply()?),
        TAG_WRITEBACK => {
            let cert = Arc::new(r.take_cert(0)?);
            let tx = r.take_opt(|r| r.take_tx())?;
            BasilMsg::Writeback(Writeback { cert, tx })
        }
        TAG_RTS_RELEASE => {
            let key = r.take_key()?;
            let ts = r.take_ts()?;
            BasilMsg::RtsRelease { key, ts }
        }
        TAG_INVOKE_FB => {
            let txid = r.take_txid()?;
            let n = r.take_count(58)?;
            let mut views = Vec::with_capacity(n);
            for _ in 0..n {
                views.push(r.take_st2_reply()?);
            }
            let auth = r.take_opt(|r| r.take_batch_proof())?;
            BasilMsg::InvokeFb(InvokeFb { txid, views, auth })
        }
        TAG_ELECT_FB => BasilMsg::ElectFb(r.take_elect_fb()?),
        TAG_DEC_FB => {
            let txid = r.take_txid()?;
            let decision = r.take_decision()?;
            let view = r.take_u64()?;
            let n = r.take_count(50)?;
            let mut elect_proof = Vec::with_capacity(n);
            for _ in 0..n {
                elect_proof.push(r.take_elect_fb()?);
            }
            let auth = r.take_opt(|r| r.take_batch_proof())?;
            BasilMsg::DecFb(DecFb {
                txid,
                decision,
                view,
                elect_proof,
                auth,
            })
        }
        TAG_CATCH_UP_REQUEST => BasilMsg::CatchUpRequest(CatchUpRequest {
            from: r.take_replica()?,
        }),
        TAG_CATCH_UP_REPLY => {
            let from = r.take_replica()?;
            let n = r.take_count(2)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let cert = Arc::new(r.take_cert(0)?);
                let tx = r.take_opt(|r| r.take_tx())?;
                entries.push((cert, tx));
            }
            BasilMsg::CatchUpReply(CatchUpReply { from, entries })
        }
        tag => return Err(WireError::BadTag { tag }),
    };
    Ok((from, msg))
}

/// Incremental frame reassembly over a byte stream.
///
/// Feed raw socket reads in with [`FrameReader::extend`], pull decoded
/// `(sender, message)` pairs out with [`FrameReader::next_msg`]. The first
/// malformed frame poisons the stream — the connection carrying it should
/// be dropped, exactly like a WAL truncating at its first bad frame.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reassembly buffer.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Decodes and drains the next complete frame, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes"; an error means the stream is
    /// corrupt and the connection must be dropped.
    pub fn next_msg(&mut self) -> Result<Option<(NodeId, BasilMsg)>, WireError> {
        let (decoded, consumed) = match split_frame(&self.buf)? {
            None => return Ok(None),
            Some((payload, consumed)) => (decode_frame_payload(payload)?, consumed),
        };
        self.buf.drain(..consumed);
        Ok(Some(decoded))
    }

    /// Bytes currently buffered (for backpressure accounting in tests).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}
