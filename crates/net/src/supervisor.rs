//! The process-cluster supervisor: launches an n = 6 / f = 1 single-shard
//! Basil deployment as OS processes, SIGKILLs a replica mid-run, restarts
//! it through the real WAL file, and audits the collected results with the
//! same serializability + decision-agreement judgement the simulator uses.
//!
//! This is the harness half of the real-IO runtime. Where the simulator
//! inspects live actors, the supervisor only ever sees what the processes
//! wrote to disk on clean exit — which is precisely the vantage point of a
//! real operator, and the reason [`basil::audit_history`] exists as a free
//! function over collected histories.

use crate::node::{read_results, ClientResults, NodeResults, ReplicaResults};
use basil::{audit_history, ClusterAuditError};
use basil_common::TxId;
use basil_store::Transaction;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// A mid-run SIGKILL of one replica, with its restart time.
#[derive(Clone, Copy, Debug)]
pub struct KillPlan {
    /// Replica index to kill.
    pub replica: u32,
    /// Deployment time of the kill, milliseconds.
    pub at_ms: u64,
    /// Deployment time of the restart, milliseconds (same WAL file, so the
    /// new process recovers through `BasilReplica::recover` and real
    /// catch-up traffic).
    pub restart_ms: u64,
}

/// Everything needed to launch one process cluster.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Path to the `basil-node` binary.
    pub node_bin: PathBuf,
    /// Clients to launch.
    pub num_clients: u32,
    /// Deployment seed.
    pub seed: u64,
    /// First port of the deployment's range (replicas, then clients at
    /// +100).
    pub base_port: u16,
    /// Run length in deployment milliseconds.
    pub run_ms: u64,
    /// Optional mid-run kill + restart.
    pub kill: Option<KillPlan>,
    /// Directory for WAL and results files.
    pub workdir: PathBuf,
    /// Workload knobs: keys, reads, writes per transaction.
    pub workload: (u64, usize, usize),
    /// Replica executor-pool width passed to every replica process:
    /// `1` = inline (serial store, the historical behaviour), `0` = auto
    /// from the host's cores, `n ≥ 2` = a pool of `n` workers over the
    /// concurrent sharded store.
    pub executors: usize,
}

/// The harvested outcome of a supervised run.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// Per-replica results, by replica index.
    pub replicas: HashMap<u32, ReplicaResults>,
    /// Per-client results, by client id.
    pub clients: HashMap<u64, ClientResults>,
}

impl ClusterOutcome {
    /// The union of committed transactions over all replicas, deduplicated
    /// by transaction id.
    pub fn committed_union(&self) -> Vec<Transaction> {
        let mut seen: HashMap<TxId, Transaction> = HashMap::new();
        for r in self.replicas.values() {
            for tx in &r.committed {
                seen.entry(tx.id()).or_insert_with(|| tx.clone());
            }
        }
        seen.into_values().collect()
    }

    /// Every transaction id any replica finalized as an abort.
    pub fn aborted_anywhere(&self) -> Vec<TxId> {
        let mut out = Vec::new();
        for r in self.replicas.values() {
            for (txid, commit) in &r.decisions {
                if !commit {
                    out.push(*txid);
                }
            }
        }
        out
    }

    /// Total client-observed commits.
    pub fn total_committed(&self) -> u64 {
        self.clients.values().map(|c| c.committed).sum()
    }

    /// The simulator's cluster audit over the collected histories:
    /// decision agreement (Lemma 2) then serializability.
    pub fn audit(&self) -> Result<(), ClusterAuditError> {
        audit_history(&self.committed_union(), self.aborted_anywhere())
    }
}

/// Failures of a supervised run (before any audit is attempted).
#[derive(Debug)]
pub enum SupervisorError {
    /// Spawning or signalling a child failed.
    Io(std::io::Error),
    /// A child was still running at the hard deadline.
    Hung {
        /// Human-readable identity of the hung process.
        which: String,
    },
    /// A child exited non-zero.
    Failed {
        /// Human-readable identity of the failed process.
        which: String,
    },
}

impl From<std::io::Error> for SupervisorError {
    fn from(e: std::io::Error) -> Self {
        SupervisorError::Io(e)
    }
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorError::Io(e) => write!(f, "spawn/signal failed: {e}"),
            SupervisorError::Hung { which } => write!(f, "{which} hung past the deadline"),
            SupervisorError::Failed { which } => write!(f, "{which} exited non-zero"),
        }
    }
}

impl std::error::Error for SupervisorError {}

fn wal_path(workdir: &Path, index: u32) -> PathBuf {
    workdir.join(format!("replica-{index}.wal"))
}

fn results_path(workdir: &Path, who: &str) -> PathBuf {
    workdir.join(format!("{who}.results"))
}

/// Spawns one `basil-node` process.
#[allow(clippy::too_many_arguments)]
fn spawn_node(
    cfg: &SupervisorConfig,
    role: &str,
    who: u64,
    epoch: u64,
    duration_ms: u64,
) -> std::io::Result<Child> {
    let (keys, reads, writes) = cfg.workload;
    let mut cmd = Command::new(&cfg.node_bin);
    cmd.arg("--role")
        .arg(role)
        .arg("--who")
        .arg(who.to_string())
        .arg("--clients")
        .arg(cfg.num_clients.to_string())
        .arg("--seed")
        .arg(cfg.seed.to_string())
        .arg("--base-port")
        .arg(cfg.base_port.to_string())
        .arg("--epoch-nanos")
        .arg(epoch.to_string())
        .arg("--duration-ms")
        .arg(duration_ms.to_string())
        .arg("--keys")
        .arg(keys.to_string())
        .arg("--reads")
        .arg(reads.to_string())
        .arg("--writes")
        .arg(writes.to_string());
    let who_name = if role == "replica" {
        cmd.arg("--wal").arg(wal_path(&cfg.workdir, who as u32));
        cmd.arg("--executors").arg(cfg.executors.to_string());
        format!("replica-{who}")
    } else {
        format!("client-{who}")
    };
    cmd.arg("--results")
        .arg(results_path(&cfg.workdir, &who_name));
    cmd.spawn()
}

/// Runs the full cluster lifecycle: spawn replicas, spawn clients, execute
/// the kill plan, await every child (with a hard grace period past the run
/// length), and harvest the results files.
pub fn run_cluster(cfg: &SupervisorConfig) -> Result<ClusterOutcome, SupervisorError> {
    std::fs::create_dir_all(&cfg.workdir)?;
    let n = crate::node::deployment_config().system.shard.n();
    let epoch = crate::runtime::Clock::unix_now_nanos() + 200_000_000; // 200 ms of spawn slack
    let start = Instant::now();
    let deployment_elapsed_ms = move || {
        let now = crate::runtime::Clock::unix_now_nanos();
        now.saturating_sub(epoch) / 1_000_000
    };

    let mut replicas: HashMap<u32, Child> = HashMap::new();
    for i in 0..n {
        replicas.insert(
            i,
            spawn_node(cfg, "replica", u64::from(i), epoch, cfg.run_ms)?,
        );
    }
    let mut clients: HashMap<u64, Child> = HashMap::new();
    for c in 0..cfg.num_clients {
        clients.insert(
            u64::from(c),
            spawn_node(cfg, "client", u64::from(c), epoch, cfg.run_ms)?,
        );
    }

    // Execute the kill plan against deployment time.
    if let Some(kill) = cfg.kill {
        while deployment_elapsed_ms() < kill.at_ms {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(victim) = replicas.get_mut(&kill.replica) {
            // SIGKILL: no atexit, no flush, no goodbye — the only state
            // that survives is what write(2) already put in the WAL file.
            victim.kill()?;
            let _ = victim.wait();
        }
        while deployment_elapsed_ms() < kill.restart_ms {
            std::thread::sleep(Duration::from_millis(5));
        }
        replicas.insert(
            kill.replica,
            spawn_node(cfg, "replica", u64::from(kill.replica), epoch, cfg.run_ms)?,
        );
    }

    // Await everything, with a grace period past the nominal run length for
    // spawn slack and shutdown. A child that overstays is killed and
    // reported — a wedged node is a test failure, not a hang.
    let hard_deadline = start + Duration::from_millis(cfg.run_ms + 15_000);
    let await_child = |which: String, child: &mut Child| -> Result<(), SupervisorError> {
        loop {
            match child.try_wait() {
                Ok(Some(status)) if status.success() => return Ok(()),
                Ok(Some(_)) => return Err(SupervisorError::Failed { which }),
                Ok(None) => {
                    if Instant::now() > hard_deadline {
                        let _ = child.kill();
                        let _ = child.wait();
                        return Err(SupervisorError::Hung { which });
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(SupervisorError::Io(e)),
            }
        }
    };
    for (c, child) in clients.iter_mut() {
        await_child(format!("client-{c}"), child)?;
    }
    for (i, child) in replicas.iter_mut() {
        await_child(format!("replica-{i}"), child)?;
    }

    // Harvest.
    let mut outcome = ClusterOutcome {
        replicas: HashMap::new(),
        clients: HashMap::new(),
    };
    for i in 0..n {
        let path = results_path(&cfg.workdir, &format!("replica-{i}"));
        match read_results(&path)? {
            NodeResults::Replica(r) => {
                outcome.replicas.insert(i, r);
            }
            NodeResults::Client(_) => {
                return Err(SupervisorError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("replica-{i} wrote client results"),
                )))
            }
        }
    }
    for c in 0..cfg.num_clients {
        let path = results_path(&cfg.workdir, &format!("client-{c}"));
        match read_results(&path)? {
            NodeResults::Client(r) => {
                outcome.clients.insert(u64::from(c), r);
            }
            NodeResults::Replica(_) => {
                return Err(SupervisorError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("client-{c} wrote replica results"),
                )))
            }
        }
    }
    Ok(outcome)
}
