//! Assembly of one node process: address book, key derivation, WAL file
//! handling, the role-specific actor, and the results file the supervisor
//! harvests.
//!
//! The point of this module is that it contains **no protocol code**. It
//! instantiates the exact `BasilReplica` / `BasilClient` state machines the
//! simulator runs — same constructors, same configuration type — and wires
//! them to real sockets ([`crate::conn`]), real time ([`crate::runtime`]),
//! and a real WAL file. Key material is derived from the deployment seed
//! with the identical node enumeration the simulator harness uses
//! (replicas `0..n` of each shard, then clients `0..num_clients`), so
//! signatures verify across processes exactly as they do across simulated
//! actors.

use crate::conn::{ConnManager, ConnOptions};
use crate::exec::ExecutorPool;
use crate::runtime::{Clock, NodeRuntime, PrefetchHook};
use basil_common::{
    resolve_workers, ClientId, Duration, Key, NodeId, ReplicaId, ShardId, SimTime, TxId, Value,
};
use basil_core::byzantine::FaultProfile;
use basil_core::{BasilClient, BasilConfig, BasilMsg, BasilReplica, ReplicaBehavior};
use basil_crypto::KeyRegistry;
use basil_simnet::Actor;
use basil_store::mvtso::Decision;
use basil_store::{MvtsoStore, SharedStore, Transaction};
use basil_workloads::YcsbGenerator;
use std::collections::HashMap;
use std::io::{Read as IoRead, Write as IoWrite};
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::path::PathBuf;

/// Which actor this process runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Replica `index` of the single shard.
    Replica {
        /// Replica index in `0..n`.
        index: u32,
    },
    /// Client with the given id.
    Client {
        /// Client id in `0..num_clients`.
        id: u64,
    },
}

/// Everything a node process needs to know, decoded from the command line
/// by `basil-node` and produced by the supervisor.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// This process's role.
    pub role: Role,
    /// Clients in the deployment (for key derivation and the address book).
    pub num_clients: u32,
    /// Deployment seed: key material, workload, backoff jitter.
    pub seed: u64,
    /// First port of the deployment's port range.
    pub base_port: u16,
    /// Shared time base (UNIX nanoseconds), minted by the supervisor.
    pub epoch_unix_nanos: u64,
    /// How long to run, in deployment time.
    pub duration_ms: u64,
    /// WAL file (replicas only). Present and non-empty at startup means
    /// this is a post-crash restart: recover through the real WAL image.
    pub wal_path: Option<PathBuf>,
    /// Where to write the results record on clean exit.
    pub results_path: PathBuf,
    /// Workload: keys in the uniform read/write mix.
    pub keys: u64,
    /// Workload: reads per transaction.
    pub reads: usize,
    /// Workload: writes per transaction.
    pub writes: usize,
    /// Replica executor-pool width: `0` = auto-size from the host's cores
    /// (capped at [`EXECUTOR_CAP`]; single-core hosts resolve to the inline
    /// path), `1` = inline (no pool, serial store — the simulator's
    /// execution model), `n ≥ 2` = a pool of `n` workers over the
    /// concurrent sharded store. Ignored by client roles.
    pub executors: usize,
}

/// The single shard of the real-IO deployment (n = 6, f = 1).
pub const SHARD: ShardId = ShardId(0);

/// Upper bound on auto-sized executor pools: ST1 handling stops scaling
/// long before big-host core counts (one TCP fan-in, shared lock shards),
/// so `--executors 0` never spawns more than this many workers.
pub const EXECUTOR_CAP: usize = 4;

/// The protocol configuration every process derives locally — identical by
/// construction, like the simulator handing each actor a clone. Timeouts
/// are the simulator's test profile with the catch-up window widened to
/// cover real TCP connection establishment.
pub fn deployment_config() -> BasilConfig {
    let mut cfg = BasilConfig::test_single_shard();
    cfg.catch_up_timeout = Duration::from_millis(1_000);
    cfg
}

/// The port every node listens on: replicas at `base_port + index`,
/// clients at `base_port + 100 + id`.
pub fn port_of(base_port: u16, node: NodeId) -> u16 {
    match node {
        NodeId::Replica(r) => base_port + r.index as u16,
        NodeId::Client(c) => base_port + 100 + c.0 as u16,
    }
}

/// The full deployment address book (everything on localhost).
pub fn address_book(base_port: u16, num_clients: u32) -> HashMap<NodeId, SocketAddr> {
    let n = deployment_config().system.shard.n();
    let localhost = IpAddr::V4(Ipv4Addr::LOCALHOST);
    let mut book = HashMap::new();
    for i in 0..n {
        let node = NodeId::Replica(ReplicaId::new(SHARD, i));
        book.insert(node, SocketAddr::new(localhost, port_of(base_port, node)));
    }
    for c in 0..num_clients {
        let node = NodeId::Client(ClientId(u64::from(c)));
        book.insert(node, SocketAddr::new(localhost, port_of(base_port, node)));
    }
    book
}

/// Derives the deployment's key registry — the same enumeration as the
/// simulator harness (`BasilProtocol::prepare_build`): replicas `0..n`,
/// then clients `0..num_clients`. Any divergence here makes every
/// cross-process signature check fail, so it is pinned by a unit test
/// against the simulator's own registry.
pub fn derive_registry(seed: u64, num_clients: u32) -> KeyRegistry {
    let n = deployment_config().system.shard.n();
    let replicas = (0..n).map(|i| NodeId::Replica(ReplicaId::new(SHARD, i)));
    let clients = (0..num_clients).map(|i| NodeId::Client(ClientId(u64::from(i))));
    KeyRegistry::from_seed_with_nodes(seed, replicas.chain(clients))
}

/// What a node process writes on clean exit, harvested by the supervisor.
#[derive(Clone, Debug)]
pub enum NodeResults {
    /// A replica's view of the history.
    Replica(ReplicaResults),
    /// A client's counters.
    Client(ClientResults),
}

/// A replica's collected history and counters.
#[derive(Clone, Debug, Default)]
pub struct ReplicaResults {
    /// Every committed transaction in the replica's store.
    pub committed: Vec<Transaction>,
    /// Every final decision: `(txid, committed?)`.
    pub decisions: Vec<(TxId, bool)>,
    /// WAL records appended over the process lifetime.
    pub wal_appends: u64,
    /// Certificates applied from peer catch-up (recovered processes).
    pub catch_up_applied: u64,
    /// Messages shed by the bounded recovery buffer.
    pub catch_up_shed: u64,
}

/// A client's counters.
#[derive(Clone, Debug, Default)]
pub struct ClientResults {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted attempts (retried).
    pub aborted_attempts: u64,
}

/// Runs this process's actor to the configured deadline and writes the
/// results file. This is the whole life of a `basil-node` process.
pub fn run_node(cfg: &NodeConfig) -> std::io::Result<()> {
    let registry = derive_registry(cfg.seed, cfg.num_clients);
    let basil_cfg = deployment_config();
    let self_id = match cfg.role {
        Role::Replica { index } => NodeId::Replica(ReplicaId::new(SHARD, index)),
        Role::Client { id } => NodeId::Client(ClientId(id)),
    };
    let book = address_book(cfg.base_port, cfg.num_clients);
    let listen = book[&self_id];
    let (conn, inbound) = ConnManager::start(listen, book, ConnOptions::default(), cfg.seed)?;
    let clock = Clock::new(cfg.epoch_unix_nanos);
    let deadline = SimTime(cfg.duration_ms.saturating_mul(1_000_000));

    let mut pool: Option<ExecutorPool> = None;
    let mut prefetch: Option<PrefetchHook> = None;
    let actor: Box<dyn Actor<basil_core::BasilMsg>> = match cfg.role {
        Role::Replica { index } => {
            let rid = ReplicaId::new(SHARD, index);
            let genesis: Vec<(Key, Value)> = Vec::new();
            let wal_image = match &cfg.wal_path {
                Some(path) => std::fs::read(path).unwrap_or_default(),
                None => Vec::new(),
            };
            let executors = resolve_workers(cfg.executors, EXECUTOR_CAP);
            if executors >= 2 {
                // Multicore path: the replica runs over the concurrent
                // sharded store, and an executor pool prefetches ST1
                // verification + prepare from the runtime's burst drain.
                let basil_cfg = basil_cfg.replica_executors(executors);
                let mut replica = if wal_image.is_empty() {
                    BasilReplica::<SharedStore>::new(
                        rid,
                        basil_cfg.clone(),
                        registry.clone(),
                        ReplicaBehavior::Correct,
                        genesis,
                    )
                } else {
                    BasilReplica::<SharedStore>::recover(
                        rid,
                        basil_cfg.clone(),
                        registry.clone(),
                        ReplicaBehavior::Correct,
                        genesis,
                        wal_image,
                    )
                };
                if let Some(path) = &cfg.wal_path {
                    std::fs::write(path, replica.take_wal_bytes())?;
                }
                let p = ExecutorPool::start(
                    executors,
                    self_id,
                    &registry,
                    &basil_cfg,
                    replica.store(),
                    clock,
                );
                let submitter = p.submitter();
                prefetch = Some(Box::new(move |_from, msg| {
                    // Recovery ST1s want replica-side state replies, not a
                    // prepare; leave them entirely to the actor.
                    if let BasilMsg::St1(st1) = msg {
                        if !st1.recovery {
                            submitter.submit(st1.clone());
                        }
                    }
                }));
                pool = Some(p);
                Box::new(replica) as Box<dyn Actor<basil_core::BasilMsg>>
            } else {
                let mut replica = if wal_image.is_empty() {
                    BasilReplica::<MvtsoStore>::new(
                        rid,
                        basil_cfg,
                        registry,
                        ReplicaBehavior::Correct,
                        genesis,
                    )
                } else {
                    BasilReplica::<MvtsoStore>::recover(
                        rid,
                        basil_cfg,
                        registry,
                        ReplicaBehavior::Correct,
                        genesis,
                        wal_image,
                    )
                };
                if let Some(path) = &cfg.wal_path {
                    // Rewrite the file with the clean prefix recovery kept (a
                    // torn tail from the crash is truncated, exactly like the
                    // simulator's recovery path), then keep appending to it.
                    std::fs::write(path, replica.take_wal_bytes())?;
                }
                Box::new(replica)
            }
        }
        Role::Client { id } => {
            // Same per-client generator seed split as the scenario runner,
            // so process-cluster workloads match simulated ones in shape.
            let gen_seed = cfg.seed.wrapping_add(id.wrapping_mul(7919));
            let generator = Box::new(YcsbGenerator::rw_uniform(
                gen_seed, cfg.keys, cfg.reads, cfg.writes,
            ));
            Box::new(BasilClient::new(
                ClientId(id),
                basil_cfg,
                registry,
                generator,
                FaultProfile::honest(),
                cfg.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    };

    let mut runtime = NodeRuntime::new(self_id, actor, clock, conn.clone(), inbound);
    if let Some(hook) = prefetch {
        runtime.set_prefetch(hook);
    }
    if let Some(path) = cfg.wal_path.clone() {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        runtime.set_post_event(Box::new(move |actor| {
            let bytes = take_replica_wal(actor);
            if !bytes.is_empty() {
                // write(2) into the page cache survives SIGKILL (only
                // power loss defeats it), which is the crash model the
                // supervisor exercises — no fsync per event needed.
                let _ = file.write_all(&bytes);
                let _ = file.flush();
            }
        }));
    }

    let actor = runtime.run_until(deadline);
    conn.shutdown();
    if let Some(pool) = pool {
        // Joins the workers: no prefetch thread touches the store while it
        // is harvested below.
        let _ = pool.shutdown();
    }

    let results = harvest(cfg.role, actor);
    write_results(&cfg.results_path, &results)
}

/// Drains pending WAL bytes from whichever replica flavour the actor is
/// (serial-store or concurrent-store); empty for clients.
fn take_replica_wal(actor: &mut dyn Actor<basil_core::BasilMsg>) -> Vec<u8> {
    if let Some(replica) = actor
        .as_any_mut()
        .downcast_mut::<BasilReplica<MvtsoStore>>()
    {
        return replica.take_wal_bytes();
    }
    if let Some(replica) = actor
        .as_any_mut()
        .downcast_mut::<BasilReplica<SharedStore>>()
    {
        return replica.take_wal_bytes();
    }
    Vec::new()
}

/// Extracts the results record from the finished actor.
fn harvest(role: Role, mut actor: Box<dyn Actor<basil_core::BasilMsg>>) -> NodeResults {
    match role {
        Role::Replica { .. } => {
            if let Some(replica) = actor
                .as_any_mut()
                .downcast_mut::<BasilReplica<SharedStore>>()
            {
                let store = replica.store().handle();
                let mut res = ReplicaResults {
                    committed: store
                        .committed_snapshot()
                        .iter()
                        .map(|tx| (**tx).clone())
                        .collect(),
                    decisions: store
                        .decisions_snapshot()
                        .into_iter()
                        .map(|(txid, d)| (txid, d == Decision::Commit))
                        .collect(),
                    ..ReplicaResults::default()
                };
                let stats = replica.stats();
                res.wal_appends = stats.wal_appends;
                res.catch_up_applied = stats.catch_up_applied;
                res.catch_up_shed = stats.catch_up_shed;
                return NodeResults::Replica(res);
            }
            let replica = actor
                .as_any_mut()
                .downcast_mut::<BasilReplica<MvtsoStore>>()
                .expect("replica role runs a BasilReplica");
            let mut res = ReplicaResults {
                committed: replica.store().committed_iter().cloned().collect(),
                decisions: replica
                    .store()
                    .decisions_iter()
                    .map(|(txid, d)| (*txid, *d == Decision::Commit))
                    .collect(),
                ..ReplicaResults::default()
            };
            let stats = replica.stats();
            res.wal_appends = stats.wal_appends;
            res.catch_up_applied = stats.catch_up_applied;
            res.catch_up_shed = stats.catch_up_shed;
            NodeResults::Replica(res)
        }
        Role::Client { .. } => {
            let client = actor
                .as_any_mut()
                .downcast_mut::<BasilClient>()
                .expect("client role runs a BasilClient");
            let stats = client.stats();
            NodeResults::Client(ClientResults {
                committed: stats.committed,
                aborted_attempts: stats.aborted_attempts,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Results file codec (tagged length-prefixed records; local file, trusted)
// ---------------------------------------------------------------------------

const REC_COMMITTED: u8 = b'C';
const REC_DECISION: u8 = b'D';
const REC_REPLICA_STATS: u8 = b'S';
const REC_CLIENT_STATS: u8 = b'L';

/// Writes `results` to `path` (atomically: temp file + rename, so the
/// supervisor never reads a half-written record set).
pub fn write_results(path: &PathBuf, results: &NodeResults) -> std::io::Result<()> {
    let mut out: Vec<u8> = Vec::new();
    let rec = |tag: u8, body: &[u8], out: &mut Vec<u8>| {
        out.push(tag);
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(body);
    };
    match results {
        NodeResults::Replica(r) => {
            for tx in &r.committed {
                rec(REC_COMMITTED, tx.encoded(), &mut out);
            }
            for (txid, commit) in &r.decisions {
                let mut body = txid.as_bytes().to_vec();
                body.push(*commit as u8);
                rec(REC_DECISION, &body, &mut out);
            }
            let mut body = Vec::with_capacity(24);
            body.extend_from_slice(&r.wal_appends.to_be_bytes());
            body.extend_from_slice(&r.catch_up_applied.to_be_bytes());
            body.extend_from_slice(&r.catch_up_shed.to_be_bytes());
            rec(REC_REPLICA_STATS, &body, &mut out);
        }
        NodeResults::Client(c) => {
            let mut body = Vec::with_capacity(16);
            body.extend_from_slice(&c.committed.to_be_bytes());
            body.extend_from_slice(&c.aborted_attempts.to_be_bytes());
            rec(REC_CLIENT_STATS, &body, &mut out);
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&out)?;
        f.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads a results file written by [`write_results`].
pub fn read_results(path: &PathBuf) -> std::io::Result<NodeResults> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let mut replica = ReplicaResults::default();
    let mut client: Option<ClientResults> = None;
    let mut saw_replica = false;
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes.len() - pos < 5 {
            return Err(bad("truncated record header"));
        }
        let tag = bytes[pos];
        let len = u32::from_be_bytes(bytes[pos + 1..pos + 5].try_into().unwrap()) as usize;
        pos += 5;
        if bytes.len() - pos < len {
            return Err(bad("truncated record body"));
        }
        let body = &bytes[pos..pos + len];
        pos += len;
        match tag {
            REC_COMMITTED => {
                let tx = Transaction::decode(body).ok_or_else(|| bad("bad transaction"))?;
                replica.committed.push(tx);
                saw_replica = true;
            }
            REC_DECISION => {
                if body.len() != 33 {
                    return Err(bad("bad decision record"));
                }
                let txid = TxId::from_bytes(body[..32].try_into().unwrap());
                replica.decisions.push((txid, body[32] == 1));
                saw_replica = true;
            }
            REC_REPLICA_STATS => {
                if body.len() != 24 {
                    return Err(bad("bad replica stats record"));
                }
                replica.wal_appends = u64::from_be_bytes(body[..8].try_into().unwrap());
                replica.catch_up_applied = u64::from_be_bytes(body[8..16].try_into().unwrap());
                replica.catch_up_shed = u64::from_be_bytes(body[16..24].try_into().unwrap());
                saw_replica = true;
            }
            REC_CLIENT_STATS => {
                if body.len() != 16 {
                    return Err(bad("bad client stats record"));
                }
                client = Some(ClientResults {
                    committed: u64::from_be_bytes(body[..8].try_into().unwrap()),
                    aborted_attempts: u64::from_be_bytes(body[8..16].try_into().unwrap()),
                });
            }
            _ => return Err(bad("unknown record tag")),
        }
    }
    match (saw_replica, client) {
        (false, Some(c)) => Ok(NodeResults::Client(c)),
        (true, None) => Ok(NodeResults::Replica(replica)),
        _ => Err(bad("mixed or empty results file")),
    }
}
