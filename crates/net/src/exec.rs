//! The replica executor pool: fans ST1 verification and store-prepare work
//! across threads ahead of the actor loop.
//!
//! The real-IO actor loop is single-threaded by design — it runs the exact
//! state machine the simulator runs. On a multicore host that leaves cores
//! idle while the replica burns its loop thread on the two CPU-heavy parts
//! of ST1 handling: MAC verification and the MVTSO concurrency-control
//! check. This pool moves both off the loop thread *without changing the
//! actor*:
//!
//! * The runtime's burst-drain prefetch hook ([`crate::runtime::NodeRuntime::
//!   set_prefetch`]) submits every queued-but-not-yet-dispatched ST1 to the
//!   pool the moment it is pulled off the socket channel.
//! * A worker verifies the request MAC with its own [`SigEngine`] (never
//!   touching the store on a forged request — the same Byzantine gate the
//!   actor applies) and then runs [`ConcurrentMvtsoStore::prepare`] through
//!   the replica's own [`SharedStore`] handle.
//! * The outcome is **discarded**. When the actor loop reaches the same
//!   ST1 it re-runs the prepare and hits the store's memoized vote (same
//!   transaction id ⇒ same published outcome), so the authoritative path,
//!   vote signing, reply batching, and WAL ordering are exactly as before.
//!
//! Safety rests on the concurrent store's linearization guarantee: a pool
//! prepare is just one more prepare in the history (indistinguishable from
//! a client retransmission), property-tested equivalent to a serial
//! execution. Worker clocks can lag the actor's re-check by microseconds;
//! a vote decided at the earlier clock is one a correct replica was allowed
//! to cast, so agreement is unaffected.
//!
//! [`ConcurrentMvtsoStore::prepare`]: basil_store::ConcurrentMvtsoStore::prepare

use crate::runtime::Clock;
use basil_common::NodeId;
use basil_core::crypto_engine::SigEngine;
use basil_core::messages::St1;
use basil_core::BasilConfig;
use basil_crypto::KeyRegistry;
use basil_store::SharedStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Counters describing what the pool actually did (harvested by tests and
/// the supervisor smoke run to prove the prefetch path was exercised).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// ST1s handed to the pool by the prefetch hook.
    pub submitted: u64,
    /// Submissions dropped by a worker because the MAC failed to verify.
    pub rejected: u64,
    /// Prepares actually run against the shared store.
    pub prepared: u64,
}

#[derive(Default)]
struct PoolCounters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    prepared: AtomicU64,
}

/// One unit of pool work, or the shutdown sentinel. Sentinels queue behind
/// every already-submitted job, so [`ExecutorPool::shutdown`] drains the
/// backlog — and completes even if a [`PoolSubmitter`] clone of the sender
/// is still alive somewhere.
enum Job {
    St1(St1),
    Stop,
}

/// A cheap handle the prefetch hook owns: submits ST1s to the workers
/// without blocking the actor loop.
pub struct PoolSubmitter {
    jobs: mpsc::Sender<Job>,
    counters: Arc<PoolCounters>,
}

impl PoolSubmitter {
    /// Enqueues one ST1 for verification + prepare. Never blocks; if the
    /// pool has shut down the submission is silently dropped (the actor
    /// path still handles the message authoritatively).
    pub fn submit(&self, st1: St1) {
        if self.jobs.send(Job::St1(st1)).is_ok() {
            self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A fixed-width pool of executor threads over one replica's
/// [`SharedStore`]. Created by the node assembly when
/// `BasilConfig::replica_executors ≥ 2`; joined on shutdown before the
/// store is harvested.
pub struct ExecutorPool {
    jobs: mpsc::Sender<Job>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<PoolCounters>,
}

impl ExecutorPool {
    /// Starts `width` workers. Each owns its own [`SigEngine`] (signature
    /// caches are per-thread; the registry is shared) and a clone of the
    /// replica's store handle.
    pub fn start(
        width: usize,
        replica: NodeId,
        registry: &KeyRegistry,
        cfg: &BasilConfig,
        store: &SharedStore,
        clock: Clock,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(std::sync::Mutex::new(rx));
        let counters = Arc::new(PoolCounters::default());
        let delta = cfg.system.delta;
        let mut workers = Vec::with_capacity(width);
        for _ in 0..width {
            let rx = Arc::clone(&rx);
            let counters = Arc::clone(&counters);
            let mut engine = SigEngine::new(replica, registry.clone(), cfg);
            let store = store.clone();
            workers.push(std::thread::spawn(move || loop {
                // Workers share one receiver behind a mutex: jobs are
                // CPU-bound (MAC + store check), so receiver contention is
                // noise next to the work itself.
                let job = match rx.lock() {
                    Ok(guard) => guard.recv(),
                    Err(_) => break,
                };
                let st1 = match job {
                    Ok(Job::St1(st1)) => st1,
                    // A stop sentinel or a closed channel both end the
                    // worker; pending jobs ahead of the sentinel are done.
                    Ok(Job::Stop) | Err(_) => break,
                };
                let (ok, _cost) = engine.verify_request(&st1, st1.auth.as_ref());
                if !ok {
                    counters.rejected.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let _ = store.handle().prepare(&st1.tx, clock.now(), delta);
                counters.prepared.fetch_add(1, Ordering::Relaxed);
            }));
        }
        ExecutorPool {
            jobs: tx,
            workers,
            counters,
        }
    }

    /// A submission handle for the runtime's prefetch hook.
    pub fn submitter(&self) -> PoolSubmitter {
        PoolSubmitter {
            jobs: self.jobs.clone(),
            counters: Arc::clone(&self.counters),
        }
    }

    /// The pool's activity counters so far.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            prepared: self.counters.prepared.load(Ordering::Relaxed),
        }
    }

    /// Drains and joins the workers: every job submitted before this call
    /// is completed before it returns, so a subsequent store harvest
    /// observes all prefetched prepares. Returns the final counters.
    pub fn shutdown(mut self) -> ExecStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        // One sentinel per worker, queued behind the backlog. Sending can
        // only fail once every worker has already exited.
        for _ in 0..self.workers.len() {
            let _ = self.jobs.send(Job::Stop);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ExecutorPool {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basil_common::{ClientId, Key, ReplicaId, ShardId, SimTime, Timestamp, Value};
    use basil_core::crypto_engine::SigEngine as ClientEngine;
    use basil_store::{TransactionBuilder, TxStore};

    fn st1(registry: &KeyRegistry, cfg: &BasilConfig, client: u64, key: &str) -> St1 {
        let mut builder =
            TransactionBuilder::new(Timestamp::new(SimTime::from_millis(5), ClientId(client)));
        builder.record_write(Key::from(key), Value::from(b"v".as_slice()));
        let mut engine = ClientEngine::new(NodeId::Client(ClientId(client)), registry.clone(), cfg);
        let mut st1 = St1 {
            tx: builder.build_shared(),
            auth: None,
            recovery: false,
        };
        let (auth, _) = engine.sign_request(&st1);
        st1.auth = auth;
        st1
    }

    #[test]
    fn pool_verifies_then_prepares_and_rejects_forgeries() {
        let cfg = BasilConfig::test_single_shard();
        let rid = NodeId::Replica(ReplicaId::new(ShardId(0), 0));
        let registry = KeyRegistry::from_seed_with_nodes(
            7,
            [
                rid,
                NodeId::Client(ClientId(0)),
                NodeId::Client(ClientId(1)),
            ],
        );
        let store = <SharedStore as TxStore>::with_initial_data(Vec::new());
        let pool = ExecutorPool::start(2, rid, &registry, &cfg, &store, Clock::new(0));
        let sub = pool.submitter();

        sub.submit(st1(&registry, &cfg, 0, "a"));
        sub.submit(st1(&registry, &cfg, 1, "b"));
        let mut forged = st1(&registry, &cfg, 0, "c");
        forged.auth = None; // missing MAC must never reach the store
        sub.submit(forged);

        let stats = pool.shutdown();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.prepared, 2);
        // both verified transactions are now prepared (memoized votes the
        // actor path would hit)
        assert_eq!(store.handle().prepared_count(), 2);
    }
}
