//! The single-node event loop: drives one unmodified [`Actor`] from real
//! time and real sockets.
//!
//! This is the real-IO counterpart of the simulator's scheduler. The actor
//! cannot tell the difference — it sees the same [`Context`] callbacks —
//! but here:
//!
//! * **Time** is the wall clock, expressed as nanoseconds since a
//!   deployment-wide epoch that the supervisor passes to every process.
//!   All processes on the host share one clock, so `Context::at(now, now)`
//!   is exact: there is no injected skew to model.
//! * **Sends** are encoded and handed to the [`ConnManager`]; self-sends
//!   loop back through an in-process queue (the simulator's loopback
//!   latency collapses to "immediately after the current handler").
//! * **Timers** go into a real binary heap keyed by due time; the loop
//!   sleeps on the inbound channel with a timeout equal to the next due
//!   timer.
//! * **CPU charges** are ignored: real execution takes however long it
//!   takes.
//!
//! After every handler the runtime runs a caller-provided *persistence
//! hook*; the replica role uses it to drain `take_wal_bytes()` to the WAL
//! file before any subsequent handler can observe the state the records
//! describe (write-ahead discipline across a real crash).

use crate::conn::ConnManager;
use crate::wire::encode_msg;
use basil_common::{NodeId, SimTime};
use basil_core::messages::BasilMsg;
use basil_simnet::actor::Output;
use basil_simnet::{Actor, Context};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// A deployment-wide time base: wall-clock nanoseconds since a shared epoch.
///
/// The supervisor picks the epoch once (just before spawning) and passes it
/// to every process, so timestamps minted by different processes are
/// directly comparable — the same property the simulator gets from its
/// global clock.
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    epoch_unix_nanos: u64,
}

impl Clock {
    /// A clock counting from `epoch_unix_nanos` (UNIX nanoseconds).
    pub fn new(epoch_unix_nanos: u64) -> Self {
        Clock { epoch_unix_nanos }
    }

    /// The current UNIX time in nanoseconds (for supervisors minting an
    /// epoch).
    pub fn unix_now_nanos() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0)
    }

    /// Now, as deployment time. Saturates at zero for processes started
    /// marginally before the epoch (the supervisor sets the epoch first,
    /// so in practice this is always positive).
    pub fn now(&self) -> SimTime {
        SimTime(Self::unix_now_nanos().saturating_sub(self.epoch_unix_nanos))
    }
}

/// A scheduled timer: ordered by due time, FIFO within a tick.
struct TimerEntry {
    due: SimTime,
    seq: u64,
    msg: BasilMsg,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.due, other.seq).cmp(&(self.due, self.seq))
    }
}

/// Runs after every handler with the actor and a flag saying whether the
/// handler ran (used for WAL persistence; see module docs).
pub type PostEventHook = Box<dyn FnMut(&mut dyn Actor<BasilMsg>)>;

/// Observes messages that are *queued but not yet dispatched* when a burst
/// is drained off the socket channel. The replica role uses it to hand
/// pending ST1s to the executor pool ([`crate::exec::ExecutorPool`]) so
/// signature verification and the store's prepare check run on other cores
/// while the actor loop is still working through the front of the burst.
/// Purely advisory: every message is still dispatched to the actor, in
/// order, exactly once.
pub type PrefetchHook = Box<dyn FnMut(&NodeId, &BasilMsg)>;

/// The event loop for one node process.
pub struct NodeRuntime {
    self_id: NodeId,
    actor: Box<dyn Actor<BasilMsg>>,
    clock: Clock,
    conn: Arc<ConnManager>,
    inbound: Receiver<(NodeId, BasilMsg)>,
    timers: BinaryHeap<TimerEntry>,
    loopback: VecDeque<(NodeId, BasilMsg)>,
    timer_seq: u64,
    post_event: Option<PostEventHook>,
    prefetch: Option<PrefetchHook>,
}

impl NodeRuntime {
    /// Wraps `actor` for execution. `inbound` is the event channel returned
    /// by [`ConnManager::start`].
    pub fn new(
        self_id: NodeId,
        actor: Box<dyn Actor<BasilMsg>>,
        clock: Clock,
        conn: Arc<ConnManager>,
        inbound: Receiver<(NodeId, BasilMsg)>,
    ) -> Self {
        NodeRuntime {
            self_id,
            actor,
            clock,
            conn,
            inbound,
            timers: BinaryHeap::new(),
            loopback: VecDeque::new(),
            timer_seq: 0,
            post_event: None,
            prefetch: None,
        }
    }

    /// Installs the persistence hook run after every handler.
    pub fn set_post_event(&mut self, hook: PostEventHook) {
        self.post_event = Some(hook);
    }

    /// Installs the burst prefetch hook (see [`PrefetchHook`]).
    pub fn set_prefetch(&mut self, hook: PrefetchHook) {
        self.prefetch = Some(hook);
    }

    /// Drives the actor until deployment time reaches `deadline`, then
    /// returns it for harvesting (stats, store contents, WAL bytes).
    ///
    /// The loop: fire due timers, then wait on the socket channel until the
    /// next timer is due (bounded by a short idle tick so the deadline is
    /// always observed promptly).
    pub fn run_until(mut self, deadline: SimTime) -> Box<dyn Actor<BasilMsg>> {
        // on_start, like the simulator, runs before any delivery. A replica
        // built through `BasilReplica::recover` broadcasts its real
        // CatchUpRequest traffic here.
        let mut ctx = Context::at(self.self_id, self.clock.now());
        self.actor.on_start(&mut ctx);
        self.apply(ctx);
        self.drain_loopback();

        loop {
            let now = self.clock.now();
            if now >= deadline {
                return self.actor;
            }
            self.fire_due_timers(now);
            self.drain_loopback();

            let wait = self.next_wait(deadline);
            match self.inbound.recv_timeout(wait) {
                Ok((from, msg)) => {
                    // Opportunistically drain whatever else arrived, so a
                    // burst does not pay one recv_timeout per message —
                    // and so the prefetch hook sees the whole backlog
                    // before the actor starts on its front.
                    let mut burst = vec![(from, msg)];
                    while let Ok(pair) = self.inbound.try_recv() {
                        burst.push(pair);
                    }
                    if let Some(hook) = self.prefetch.as_mut() {
                        // The first message is dispatched immediately
                        // below; prefetching it would only race the actor.
                        for (from, msg) in burst.iter().skip(1) {
                            hook(from, msg);
                        }
                    }
                    for (from, msg) in burst {
                        self.dispatch(from, msg);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return self.actor,
            }
        }
    }

    /// How long to sleep on the inbound channel: until the next timer, the
    /// deadline, or a 10 ms idle tick, whichever is soonest.
    fn next_wait(&self, deadline: SimTime) -> Duration {
        let now = self.clock.now();
        let mut wait_nanos: u64 = 10_000_000;
        if let Some(t) = self.timers.peek() {
            wait_nanos = wait_nanos.min(t.due.0.saturating_sub(now.0));
        }
        wait_nanos = wait_nanos.min(deadline.0.saturating_sub(now.0));
        Duration::from_nanos(wait_nanos.max(100_000))
    }

    /// Fires every timer due at or before `now`.
    fn fire_due_timers(&mut self, now: SimTime) {
        while self.timers.peek().is_some_and(|t| t.due <= now) {
            let entry = self.timers.pop().expect("peeked");
            let mut ctx = Context::at(self.self_id, self.clock.now());
            self.actor.on_timer(&mut ctx, entry.msg);
            self.apply(ctx);
        }
    }

    /// Delivers one inbound (or loopback) message.
    fn dispatch(&mut self, from: NodeId, msg: BasilMsg) {
        let mut ctx = Context::at(self.self_id, self.clock.now());
        self.actor.on_message(&mut ctx, from, msg);
        self.apply(ctx);
        self.drain_loopback();
    }

    /// Self-sends deliver in order, immediately after the handler that
    /// produced them (and any they produce in turn).
    fn drain_loopback(&mut self) {
        while let Some((from, msg)) = self.loopback.pop_front() {
            let mut ctx = Context::at(self.self_id, self.clock.now());
            self.actor.on_message(&mut ctx, from, msg);
            self.apply(ctx);
        }
    }

    /// Applies a finished handler's outputs and runs the persistence hook.
    fn apply(&mut self, ctx: Context<BasilMsg>) {
        let (outputs, _charged) = ctx.finish();
        // Persist (WAL) *before* acting on the outputs: a record must be
        // durable before any message built on it can leave the node.
        if let Some(hook) = self.post_event.as_mut() {
            hook(self.actor.as_mut());
        }
        for output in outputs {
            match output {
                Output::Send { to, msg } => {
                    if to == self.self_id {
                        self.loopback.push_back((to, msg));
                    } else {
                        // Timer variants never reach here (they go through
                        // schedule_self); treat an encode failure as a
                        // shed, not a crash.
                        if let Ok(frame) = encode_msg(self.self_id, &msg) {
                            self.conn.send_frame(to, frame);
                        }
                    }
                }
                Output::Timer { delay, msg } => {
                    self.timer_seq += 1;
                    self.timers.push(TimerEntry {
                        due: SimTime(self.clock.now().0.saturating_add(delay.0)),
                        seq: self.timer_seq,
                        msg,
                    });
                }
            }
        }
    }
}
