//! # basil-net
//!
//! The real-IO runtime: the *identical* protocol state machines the
//! simulator drives (`BasilReplica` / `BasilClient` from `basil-core`,
//! behind the `Actor` seam of `basil-simnet`) running as OS processes over
//! localhost TCP. Nothing in the protocol crates changes — this crate
//! supplies the world around the seam:
//!
//! * [`wire`] — a length-prefixed, checksummed frame codec for every
//!   [`basil_core::BasilMsg`], reusing the memoized canonical transaction
//!   encoding. Decoding is total: malformed input is a typed error (a peer
//!   fault), never a panic.
//! * [`conn`] — the TCP connection manager: per-peer bounded outbound
//!   queues (full queue ⇒ shed + count, never block), connect/read
//!   timeouts, and deterministic-jitter exponential backoff reconnects. A
//!   dead or partitioned peer degrades throughput; it cannot wedge the
//!   node.
//! * [`runtime`] — the single-node event loop: wall-clock time against a
//!   deployment-wide epoch, a real timer heap, loopback self-sends, and a
//!   post-event persistence hook that appends `take_wal_bytes()` to a real
//!   WAL file with write-ahead ordering.
//! * [`exec`] — the replica executor pool: on multicore hosts
//!   (`--executors`), ST1 verification and the concurrent store's prepare
//!   check run on worker threads ahead of the actor loop, fed by the
//!   runtime's burst-drain prefetch hook. The actor stays authoritative —
//!   it re-runs each prepare and hits the store's memoized vote.
//! * [`node`] — process assembly for the `basil-node` binary: address
//!   book, key derivation identical to the simulator harness, WAL-file
//!   recovery through `BasilReplica::recover`, and the results file the
//!   supervisor harvests.
//! * [`supervisor`] — the process-cluster harness: spawns an n = 6 / f = 1
//!   deployment, SIGKILLs a replica mid-run, restarts it over the surviving
//!   WAL file (driving real `CatchUpRequest` traffic), and runs the same
//!   serializability + decision-agreement audit as the simulator
//!   ([`basil::audit_history`]) over the collected results.
//!
//! The division of labor with the simulator is deliberate: the simulator
//! owns semantic coverage (deterministic schedules, fault matrices,
//! golden digests), while this crate proves the same state machines
//! survive contact with real sockets, real clocks, real files, and real
//! `kill -9`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod conn;
pub mod exec;
pub mod node;
pub mod runtime;
pub mod supervisor;
pub mod wire;

pub use conn::{reconnect_backoff, ConnManager, ConnOptions, NetStats};
pub use exec::{ExecStats, ExecutorPool, PoolSubmitter};
pub use node::{NodeConfig, Role};
pub use runtime::{Clock, NodeRuntime};
pub use supervisor::{run_cluster, ClusterOutcome, KillPlan, SupervisorConfig};
pub use wire::{decode_frame_payload, encode_msg, FrameReader, WireError};
