//! The TCP connection manager: bounded outbound queues, reconnect with
//! deterministic-jitter exponential backoff, and frame reassembly on the
//! inbound path.
//!
//! Topology is an address book: every node (replica or client) listens on
//! its own localhost port, and a node that wants to send connects to the
//! destination's port. Connections are one-directional; a replica's reply
//! to a client flows over the replica's own outbound connection, not back
//! down the inbound one. That keeps the manager symmetric — there is one
//! code path, "deliver this frame to that peer", with no connection-reuse
//! protocol to get wrong.
//!
//! Failure discipline, matching the issue's requirements:
//!
//! * **A dead or partitioned peer degrades throughput, never wedges.** All
//!   sends are `try_send` into a bounded per-peer queue; when the queue is
//!   full the frame is shed and counted. The writer thread absorbs connect
//!   failures with exponential backoff, so a peer that is down costs a
//!   bounded queue of stale frames and some retry sleeps — nothing blocks
//!   the protocol thread, and the protocol's own retransmission timers
//!   recover whatever was shed.
//! * **A malformed frame is a peer fault, not our crash.** The reader drops
//!   the connection carrying it and counts the event; decoding is total
//!   (see [`crate::wire`]).

use crate::wire::FrameReader;
use basil_common::NodeId;
use basil_core::messages::BasilMsg;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Counters shared across the manager's threads. All relaxed: they are
/// telemetry, not synchronization.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Frames handed to the OS (write_all returned).
    pub frames_sent: AtomicU64,
    /// Frames shed: outbound queue full, or dropped after a failed
    /// connect/write (the protocol's retransmission timers cover these).
    pub frames_shed: AtomicU64,
    /// Frames received and decoded.
    pub frames_received: AtomicU64,
    /// Malformed frames (each one also dropped its connection).
    pub malformed_frames: AtomicU64,
    /// Connection attempts that failed and triggered a backoff sleep.
    pub reconnect_attempts: AtomicU64,
}

impl NetStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Tuning knobs for the connection manager.
#[derive(Clone, Debug)]
pub struct ConnOptions {
    /// Per-peer outbound queue capacity (frames). Beyond this, sends shed.
    pub outbound_queue: usize,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Read timeout on inbound connections (a poll interval: timeouts are
    /// not errors, they just re-check the shutdown flag).
    pub read_timeout: Duration,
    /// Base delay of the exponential reconnect backoff.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for ConnOptions {
    fn default() -> Self {
        ConnOptions {
            outbound_queue: 1024,
            connect_timeout: Duration::from_millis(250),
            read_timeout: Duration::from_millis(100),
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
        }
    }
}

/// The reconnect delay before attempt number `attempt` (0-based): the base
/// doubled per attempt, capped at `max`, plus deterministic jitter derived
/// from `seed` and `attempt` (up to half the capped delay). Deterministic
/// jitter keeps tests reproducible while still de-synchronizing a thundering
/// herd of reconnecting peers, each of which passes its own seed.
pub fn reconnect_backoff(base: Duration, max: Duration, attempt: u32, seed: u64) -> Duration {
    let base_nanos = base.as_nanos().min(u128::from(u64::MAX)) as u64;
    let max_nanos = max.as_nanos().min(u128::from(u64::MAX)) as u64;
    let exp = base_nanos
        .saturating_mul(1u64.checked_shl(attempt.min(32)).unwrap_or(u64::MAX))
        .min(max_nanos);
    // xorshift* over (seed, attempt): cheap, stateless, deterministic.
    let mut x = seed ^ (u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let jitter = if exp == 0 { 0 } else { x % (exp / 2 + 1) };
    Duration::from_nanos(
        exp.saturating_add(jitter)
            .min(max_nanos.saturating_mul(3) / 2),
    )
}

/// One peer's outbound lane: a bounded queue drained by a dedicated writer
/// thread that owns the (re)connect loop.
struct Outbound {
    queue: SyncSender<Vec<u8>>,
}

/// The connection manager for one node process.
pub struct ConnManager {
    peers: Mutex<HashMap<NodeId, Outbound>>,
    addrs: HashMap<NodeId, SocketAddr>,
    opts: ConnOptions,
    seed: u64,
    stats: Arc<NetStats>,
    closed: Arc<AtomicBool>,
    inbound_tx: Sender<(NodeId, BasilMsg)>,
}

/// The inbound event channel: every decoded `(sender, message)` pair from
/// all live connections, in arrival order.
pub type InboundReceiver = Receiver<(NodeId, BasilMsg)>;

impl ConnManager {
    /// Binds `listen` and starts the accept loop. Returns the manager and
    /// the inbound event channel carrying every decoded `(sender, message)`
    /// pair from all connections.
    ///
    /// `addrs` is the full deployment address book (this node may be
    /// included; its own entry is ignored). `seed` feeds the deterministic
    /// backoff jitter.
    pub fn start(
        listen: SocketAddr,
        addrs: HashMap<NodeId, SocketAddr>,
        opts: ConnOptions,
        seed: u64,
    ) -> std::io::Result<(Arc<ConnManager>, InboundReceiver)> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let (inbound_tx, inbound_rx) = mpsc::channel();
        let mgr = Arc::new(ConnManager {
            peers: Mutex::new(HashMap::new()),
            addrs,
            opts,
            seed,
            stats: Arc::new(NetStats::default()),
            closed: Arc::new(AtomicBool::new(false)),
            inbound_tx,
        });
        let accept_mgr = Arc::clone(&mgr);
        std::thread::spawn(move || accept_mgr.accept_loop(listener));
        Ok((mgr, inbound_rx))
    }

    /// Shared counters.
    pub fn stats(&self) -> &Arc<NetStats> {
        &self.stats
    }

    /// Signals every thread to exit at its next poll.
    pub fn shutdown(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// Enqueues an already-encoded frame for `to`. Never blocks: a full
    /// queue or an unknown destination sheds the frame and counts it.
    pub fn send_frame(&self, to: NodeId, frame: Vec<u8>) {
        let Some(addr) = self.addrs.get(&to).copied() else {
            NetStats::bump(&self.stats.frames_shed);
            return;
        };
        let mut peers = self.peers.lock().expect("peer table poisoned");
        let lane = peers.entry(to).or_insert_with(|| self.spawn_writer(addr));
        match lane.queue.try_send(frame) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                NetStats::bump(&self.stats.frames_shed);
            }
        }
    }

    /// Starts the writer thread for one peer and returns its queue handle.
    fn spawn_writer(&self, addr: SocketAddr) -> Outbound {
        let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(self.opts.outbound_queue);
        let opts = self.opts.clone();
        let stats = Arc::clone(&self.stats);
        let closed = Arc::clone(&self.closed);
        // Per-peer jitter seed: ports differ, so herds de-synchronize.
        let seed = self.seed ^ u64::from(addr.port()).wrapping_mul(0xD1B5_4A32_D192_ED03);
        std::thread::spawn(move || writer_loop(addr, rx, opts, stats, closed, seed));
        Outbound { queue: tx }
    }

    /// Accepts inbound connections until shutdown, one reader thread each.
    fn accept_loop(self: Arc<Self>, listener: TcpListener) {
        while !self.closed.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let mgr = Arc::clone(&self);
                    std::thread::spawn(move || mgr.reader_loop(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Reads one connection to completion: reassemble frames, decode, and
    /// forward. The first malformed frame (or any IO error other than a
    /// read timeout) ends the connection.
    fn reader_loop(self: Arc<Self>, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(self.opts.read_timeout));
        let mut stream = stream;
        let mut frames = FrameReader::new();
        let mut buf = [0u8; 16 * 1024];
        while !self.closed.load(Ordering::SeqCst) {
            match stream.read(&mut buf) {
                Ok(0) => return, // peer closed
                Ok(n) => {
                    frames.extend(&buf[..n]);
                    loop {
                        match frames.next_msg() {
                            Ok(Some((from, msg))) => {
                                NetStats::bump(&self.stats.frames_received);
                                if self.inbound_tx.send((from, msg)).is_err() {
                                    return; // runtime gone
                                }
                            }
                            Ok(None) => break,
                            Err(_) => {
                                // Malformed frame: evidence of a faulty
                                // peer. Count it and drop the connection.
                                NetStats::bump(&self.stats.malformed_frames);
                                return;
                            }
                        }
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue; // poll interval: re-check the shutdown flag
                }
                Err(_) => return,
            }
        }
    }
}

/// Drains one peer's queue onto a TCP stream, (re)connecting as needed.
///
/// A frame that cannot be delivered — connect failed, or the write errored —
/// is shed rather than retried: the queue keeps draining at backoff speed,
/// memory stays bounded, and when the peer returns it sees *fresh* traffic
/// instead of a replay of stale frames (the protocol's timers regenerate
/// anything that mattered).
fn writer_loop(
    addr: SocketAddr,
    rx: Receiver<Vec<u8>>,
    opts: ConnOptions,
    stats: Arc<NetStats>,
    closed: Arc<AtomicBool>,
    seed: u64,
) {
    let mut stream: Option<TcpStream> = None;
    let mut attempt: u32 = 0;
    loop {
        let frame = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(f) => f,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if closed.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        if closed.load(Ordering::SeqCst) {
            return;
        }
        if stream.is_none() {
            match TcpStream::connect_timeout(&addr, opts.connect_timeout) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    stream = Some(s);
                    attempt = 0;
                }
                Err(_) => {
                    NetStats::bump(&stats.reconnect_attempts);
                    NetStats::bump(&stats.frames_shed);
                    std::thread::sleep(reconnect_backoff(
                        opts.backoff_base,
                        opts.backoff_max,
                        attempt,
                        seed,
                    ));
                    attempt = attempt.saturating_add(1);
                    continue;
                }
            }
        }
        let ok = stream
            .as_mut()
            .map(|s| s.write_all(&frame).is_ok())
            .unwrap_or(false);
        if ok {
            NetStats::bump(&stats.frames_sent);
        } else {
            // Write error: the connection is gone. Shed this frame and
            // reconnect for the next one.
            stream = None;
            NetStats::bump(&stats.frames_shed);
        }
    }
}
