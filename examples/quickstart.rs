//! Quickstart: stand up a simulated Basil deployment (one shard, six
//! replicas, f = 1), run a few transactions against it, and inspect the
//! result.
//!
//! Run with: `cargo run --example quickstart`

use basil::harness::{BasilCluster, ClusterConfig};
use basil::{Duration, Key, Op, ScriptedGenerator, TxProfile, Value};

fn main() {
    // A deployment with two clients and an initial balance of 100 on "alice"
    // and "bob".
    let config = ClusterConfig::basil_default(2).with_initial_data(vec![
        (Key::new("alice"), Value::from_u64(100)),
        (Key::new("bob"), Value::from_u64(100)),
    ]);

    // Each client runs a short script of interactive transactions: client 0
    // transfers 30 from alice to bob; client 1 reads both accounts and
    // updates an audit record.
    let mut cluster = BasilCluster::build(config, |client| {
        let script = if client.0 == 0 {
            vec![TxProfile::new(
                "transfer",
                vec![
                    Op::RmwAdd {
                        key: Key::new("alice"),
                        delta: -30,
                    },
                    Op::RmwAdd {
                        key: Key::new("bob"),
                        delta: 30,
                    },
                ],
            )]
        } else {
            vec![TxProfile::new(
                "audit",
                vec![
                    Op::Read(Key::new("alice")),
                    Op::Read(Key::new("bob")),
                    Op::Write(Key::new("audit:last-run"), Value::from_str_value("done")),
                ],
            )]
        };
        Box::new(ScriptedGenerator::new(script))
    });

    // Run the simulated cluster for 100 ms of simulated time — plenty for two
    // transactions on a LAN.
    cluster.run_for(Duration::from_millis(100));

    println!("committed transactions : {}", cluster.total_committed());
    println!(
        "alice                  : {:?}",
        cluster
            .latest_value(&Key::new("alice"))
            .and_then(|v| v.as_u64())
    );
    println!(
        "bob                    : {:?}",
        cluster
            .latest_value(&Key::new("bob"))
            .and_then(|v| v.as_u64())
    );
    for (client, stats) in cluster.client_stats() {
        println!(
            "client {client}: committed={} aborted_attempts={} mean latency={:.2} ms fast-path={}",
            stats.committed,
            stats.aborted_attempts,
            stats.mean_latency_ms(),
            stats.fast_path_decisions
        );
    }

    // The committed history must be serializable (Byz-serializability).
    cluster.audit().expect("history is serializable");
    println!("serializability audit  : ok");
}
