//! Social-network example: the Retwis workload (add-user, follow, post-tweet,
//! read-timeline) on Basil, comparing against the TAPIR-style non-Byzantine
//! baseline on the same workload.
//!
//! Run with: `cargo run --example social_network`

use basil::baseline_harness::{BaselineCluster, BaselineClusterConfig};
use basil::baselines::{BaselineConfig, SystemKind};
use basil::harness::{BasilCluster, ClusterConfig};
use basil::workloads::retwis::RetwisGenerator;
use basil::Duration;

fn main() {
    let users = 100_000u64;
    let clients = 6u32;
    let warmup = Duration::from_millis(200);
    let window = Duration::from_millis(600);

    // Basil.
    let config = ClusterConfig::basil_default(clients);
    let mut basil_cluster = BasilCluster::build(config, |client| {
        Box::new(RetwisGenerator::paper_config(client.0, users))
    });
    let basil_report = basil_cluster.run_measured(warmup, window);
    basil_cluster.audit().expect("serializable");

    // TAPIR-style baseline on the identical workload.
    let baseline_config =
        BaselineClusterConfig::new(BaselineConfig::new(SystemKind::Tapir), clients);
    let mut tapir_cluster = BaselineCluster::build(baseline_config, |client| {
        Box::new(RetwisGenerator::paper_config(client.0, users))
    });
    let tapir_report = tapir_cluster.run_measured(warmup, window);

    println!("Retwis (Zipf 0.75, {users} users), {clients} closed-loop clients");
    println!(
        "  Basil : {:>7.0} tx/s, {:>6.2} ms mean latency, {:.0}% timeline reads",
        basil_report.throughput_tps,
        basil_report.mean_latency_ms,
        100.0
            * basil_report
                .per_label
                .get("get_timeline")
                .copied()
                .unwrap_or(0) as f64
            / basil_report.committed.max(1) as f64
    );
    println!(
        "  TAPIR : {:>7.0} tx/s, {:>6.2} ms mean latency",
        tapir_report.throughput_tps, tapir_report.mean_latency_ms
    );
    println!(
        "  BFT cost: Basil runs at {:.0}% of TAPIR's throughput (the paper reports 1.8-4x slower)",
        100.0 * basil_report.throughput_tps / tapir_report.throughput_tps.max(1.0)
    );
    println!("  committed per type (Basil): {:?}", basil_report.per_label);
}
