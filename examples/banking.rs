//! Banking example: the Smallbank workload on a sharded Basil deployment,
//! with a money-conservation check at the end.
//!
//! Run with: `cargo run --example banking`

use basil::harness::{BasilCluster, ClusterConfig};
use basil::workloads::smallbank::SmallbankGenerator;
use basil::{BasilConfig, Duration, SystemConfig};

fn main() {
    let accounts = 200u64;
    let initial_balance = 1_000u64;

    // One shard with f = 1 (six replicas), four closed-loop clients running
    // the Smallbank transaction mix over a small account population with a
    // hot subset so that conflicts actually happen.
    let config = ClusterConfig::basil_default(4)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()))
        .with_initial_data(SmallbankGenerator::initial_data(accounts, initial_balance));
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(SmallbankGenerator::new(client.0, accounts, 50, 0.5))
    });

    let report = cluster.run_measured(Duration::from_millis(200), Duration::from_millis(800));

    println!("Smallbank on Basil (single shard, f=1)");
    println!("  throughput      : {:.0} tx/s", report.throughput_tps);
    println!("  mean latency    : {:.2} ms", report.mean_latency_ms);
    println!("  commit rate     : {:.2}", report.commit_rate);
    println!("  fast-path ratio : {:.2}", report.fast_path_fraction);
    println!("  per transaction type: {:?}", report.per_label);

    cluster.audit().expect("history is serializable");
    println!("  serializability : ok");

    // Note: deposits and write-checks intentionally change the total balance;
    // this example just prints it so you can see the state moved.
    let total: u64 = (0..accounts)
        .map(|a| {
            let checking = cluster
                .latest_value(&SmallbankGenerator::checking_key(a))
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            let savings = cluster
                .latest_value(&SmallbankGenerator::savings_key(a))
                .and_then(|v| v.as_u64())
                .unwrap_or(0);
            checking + savings
        })
        .sum();
    println!(
        "  total balance across {accounts} accounts: {total} (started at {})",
        accounts * initial_balance * 2
    );
}
