//! Byzantine-recovery example: a Byzantine client prepares a transaction on a
//! hot key and stalls; a correct client that reads the key acquires a
//! dependency on the stalled transaction and uses Basil's per-transaction
//! fallback (Section 5) to finish it and commit its own transaction.
//!
//! Run with: `cargo run --example byzantine_recovery`

use basil::harness::{BasilCluster, ClusterConfig};
use basil::{ClientId, Duration, Key, NodeId, Op, ScriptedGenerator, TxProfile, Value};
use basil_core::byzantine::{ClientStrategy, FaultProfile};
use basil_core::BasilClient;

fn main() {
    // Two clients: client 0 is correct, client 1 follows the stall-early
    // strategy (sends ST1 and then disappears).
    let config = ClusterConfig::basil_default(2)
        .with_initial_data(vec![(Key::new("hot"), Value::from_u64(1))])
        .with_byzantine_clients(1, FaultProfile::always(ClientStrategy::StallEarly));

    let mut cluster = BasilCluster::build(config, |client: ClientId| {
        if client.0 == 1 {
            // The Byzantine client writes the hot key and stalls.
            Box::new(ScriptedGenerator::new([TxProfile::new(
                "byzantine-write",
                vec![Op::Write(Key::new("hot"), Value::from_u64(999))],
            )]))
        } else {
            // The correct client reads the hot key (acquiring a dependency on
            // the stalled write) and records what it saw.
            Box::new(ScriptedGenerator::new(vec![
                TxProfile::new(
                    "dependent-read",
                    vec![
                        Op::Read(Key::new("hot")),
                        Op::RmwAdd {
                            key: Key::new("observations"),
                            delta: 1,
                        },
                    ],
                );
                3
            ]))
        }
    });

    cluster.run_for(Duration::from_secs(2));

    let honest = cluster
        .sim()
        .actor::<BasilClient>(NodeId::Client(ClientId(0)))
        .expect("client 0 exists");
    let stats = honest.stats();
    println!("correct client:");
    println!("  committed             : {}", stats.committed);
    println!("  dependent reads       : {}", stats.dependent_reads);
    println!("  fallback invocations  : {}", stats.fallback_invocations);
    println!("  fallback elections    : {}", stats.fallback_elections);
    println!(
        "hot key final value     : {:?}",
        cluster
            .latest_value(&Key::new("hot"))
            .and_then(|v| v.as_u64())
    );
    println!(
        "observations counter    : {:?}",
        cluster
            .latest_value(&Key::new("observations"))
            .and_then(|v| v.as_u64())
    );

    cluster.audit().expect("history is serializable");
    println!("serializability audit   : ok");
    assert_eq!(
        stats.committed, 3,
        "the correct client must commit all its transactions despite the stalled dependency"
    );
    println!("\nDespite the Byzantine client never finishing its transaction, the correct\nclient finished it on its behalf and committed all of its own transactions.");
}
