//! Seed-corpus regression test: every committed scenario under
//! `tests/corpus/*.ron` is replayed on each `cargo test`, on the serial
//! runtime *and* on `Parallel(2)`, and must reproduce its pinned outcome
//! exactly — commit/abort counts, Byzantine commits, and the digest of the
//! committed transaction set. The corpus holds minimized specs worth
//! keeping forever: once a fuzz failure is fixed, its shrunk spec lands
//! here so the schedule that found the bug is re-run for the rest of the
//! repository's life.
//!
//! Re-pinning after an intentional behaviour change:
//!
//! ```text
//! BASIL_CORPUS_PIN=1 cargo test -p basil-scenario --test scenario_corpus -- --nocapture
//! ```
//!
//! prints the freshly computed `expect` block for every entry instead of
//! asserting, ready to paste into the corpus file.

use basil::cluster::RuntimeMode;
use basil_scenario::ron;
use basil_scenario::runner::run_basil_spec;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ron"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "the corpus is never empty");
    files
}

#[test]
fn corpus_replays_match_pinned_outcomes_on_both_runtimes() {
    let pin = std::env::var("BASIL_CORPUS_PIN").is_ok();
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).expect("readable corpus entry");
        let spec = ron::decode(&text).unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
        spec.validate()
            .unwrap_or_else(|e| panic!("{name}: invalid spec: {e}"));

        let serial = run_basil_spec(&spec, RuntimeMode::Serial);
        let parallel = run_basil_spec(&spec, RuntimeMode::Parallel(2));
        assert!(
            !serial.diverges_from(&parallel),
            "{name}: serial and parallel runs disagree:\n{serial:#?}\nvs\n{parallel:#?}"
        );
        if pin {
            println!(
                "{name}: check={:?} tail_committed={} dropped={} corrupted={} replayed={}\n    \
                 expect: Some((\n        committed: {},\n        \
                 aborted_attempts: {},\n        byz_committed: {},\n        \
                 digest: \"{}\",\n    )),",
                serial.check(&spec),
                serial.tail_committed,
                serial.messages_dropped,
                serial.messages_corrupted,
                serial.messages_replayed,
                serial.committed,
                serial.aborted_attempts,
                serial.byz_committed,
                serial.digest
            );
            continue;
        }

        assert_eq!(
            serial.check(&spec),
            None,
            "{name}: scenario checks failed: {:?}",
            serial.audit_failure
        );

        let expect = spec
            .expect
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: corpus entries must pin an expect block"));
        assert_eq!(serial.committed, expect.committed, "{name}: committed");
        assert_eq!(
            serial.aborted_attempts, expect.aborted_attempts,
            "{name}: aborted_attempts"
        );
        assert_eq!(
            serial.byz_committed, expect.byz_committed,
            "{name}: byz_committed"
        );
        assert_eq!(serial.digest, expect.digest, "{name}: committed-set digest");
    }
}

/// The corpus stays canonical: decoding an entry and re-encoding it must
/// reproduce the file's spec exactly (comments aside), so hand edits can't
/// drift from what the codec writes.
#[test]
fn corpus_entries_round_trip_through_the_codec() {
    for path in corpus_files() {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&path).expect("readable");
        let spec = ron::decode(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let re = ron::decode(&ron::encode(&spec)).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(re, spec, "{name}: encode/decode round-trip");
    }
}
