//! Determinism-equivalence golden test for the zero-copy message plane.
//!
//! The Arc-sharing refactor (reference-counted `Transaction`s and
//! `DecisionCert`s inside protocol messages and record state) must not change
//! any simulated result: it removes copies, not behaviour. In the same spirit
//! as the scheduler golden-trace test of `basil-simnet`, this test runs a
//! fixed-seed three-shard scenario and pins the results — commit/abort
//! counts, path split, and a digest over the exact set of committed
//! transaction ids — to the values captured from the pre-refactor binary
//! (commit a89501c). A mismatch means a change to simulated behaviour, not
//! just to its cost.

use basil::harness::{BasilCluster, ClusterConfig};
use basil::workloads::ycsb::YcsbGenerator;
use basil::{BasilConfig, Duration, SystemConfig};

/// Values captured from the pre-refactor binary. Scenario: 3 shards,
/// 12 clients, RW-U 2r2w over 10k keys, seed 7, 50 ms warmup + 200 ms window.
const EXPECTED_COMMITTED: u64 = 992;
const EXPECTED_ABORTED: u64 = 12;
const EXPECTED_FAST: u64 = 999;
const EXPECTED_SLOW: u64 = 5;
const EXPECTED_HISTORY_DIGEST: &str =
    "e275d26a31fe5101bbbf203382700ab764d90a6b8a18701e0d4628e934669d59";

fn run_scenario() -> BasilCluster {
    let basil = BasilConfig::bench(SystemConfig::sharded(3)).with_batch_size(16);
    let config = ClusterConfig::basil_default(12)
        .with_basil(basil)
        .with_seed(7);
    let mut cluster = BasilCluster::build(config, |cid| {
        Box::new(YcsbGenerator::rw_uniform(
            7u64.wrapping_add(cid.0.wrapping_mul(7919)),
            10_000,
            2,
            2,
        ))
    });
    cluster.run_for(Duration::from_millis(250));
    cluster
}

#[test]
fn arc_refactor_preserves_simulated_results() {
    let cluster = run_scenario();
    let snap = cluster.snapshot();
    // The canonical digest helper (SHA-256 over sorted committed ids) —
    // shared with the parallel-runtime golden tests so the definition
    // cannot drift between them.
    let digest = cluster.committed_history_digest();
    eprintln!(
        "capture: committed={} aborted={} fast={} slow={} digest={digest}",
        snap.committed, snap.aborted_attempts, snap.fast_path, snap.slow_path,
    );
    assert_eq!(snap.committed, EXPECTED_COMMITTED, "committed count");
    assert_eq!(snap.aborted_attempts, EXPECTED_ABORTED, "aborted attempts");
    assert_eq!(snap.fast_path, EXPECTED_FAST, "fast-path decisions");
    assert_eq!(snap.slow_path, EXPECTED_SLOW, "slow-path decisions");
    assert_eq!(digest, EXPECTED_HISTORY_DIGEST, "committed-history digest");
    cluster.audit().expect("history serializable");
}
