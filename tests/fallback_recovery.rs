//! Byzantine-client and fallback-protocol integration tests (Section 5 and
//! Section 6.4): stalled transactions are finished by other clients, and
//! correct clients keep making progress under every attack strategy.

use basil::harness::{BasilCluster, ClusterConfig};
use basil::workloads::ycsb::YcsbGenerator;
use basil::{
    BasilConfig, ClientId, Duration, Key, NodeId, Op, ReplicaBehavior, ScriptedGenerator,
    SystemConfig, TxProfile, Value,
};
use basil_core::byzantine::{ClientStrategy, FaultProfile};
use basil_core::BasilClient;

fn contended_generator(client: u64, keys: u64) -> YcsbGenerator {
    YcsbGenerator::rw_zipf(client, keys, 2, 2, 0.9)
}

fn byz_config(strategy: ClientStrategy, num_clients: u32, num_byz: u32) -> ClusterConfig {
    let mut basil = BasilConfig::bench(SystemConfig::single_shard_f1());
    if strategy == ClientStrategy::EquivForced {
        // The forced-equivocation experiment needs the hook that lets
        // Byzantine clients log unjustified decisions (Section 6.4).
        basil.relax_st2_validation = true;
    }
    ClusterConfig::basil_default(num_clients)
        .with_basil(basil)
        .with_byzantine_clients(
            num_byz,
            FaultProfile {
                strategy,
                faulty_fraction: 1.0,
            },
        )
        .with_seed(11)
}

/// A transaction left prepared-but-undecided by a stalling Byzantine client is
/// finished by a correct client that depends on it.
#[test]
fn stalled_dependency_is_recovered_by_interested_client() {
    // One Byzantine client that stalls after ST1 on a single hot key, and one
    // correct client that then reads that key (acquiring the dependency) and
    // must commit anyway.
    let config = byz_config(ClientStrategy::StallEarly, 2, 1)
        .with_initial_data(vec![(Key::new("hot"), Value::from_u64(1))]);
    let mut cluster = BasilCluster::build(config, |client: ClientId| {
        if client.0 == 1 {
            // The Byzantine client (ids after the honest ones are Byzantine):
            // writes the hot key, then stalls.
            Box::new(ScriptedGenerator::new([TxProfile::new(
                "byz-write",
                vec![Op::Write(Key::new("hot"), Value::from_u64(99))],
            )]))
        } else {
            // The correct client reads the hot key (it will observe the
            // prepared version and acquire a dependency) and writes another.
            let profiles = vec![
                TxProfile::new(
                    "dependent",
                    vec![
                        Op::Read(Key::new("hot")),
                        Op::Write(Key::new("out"), Value::from_u64(5)),
                    ],
                );
                3
            ];
            Box::new(ScriptedGenerator::new(profiles))
        }
    });
    cluster.run_for(Duration::from_secs(2));
    let stats = cluster.client_stats();
    let correct_committed: u64 = stats
        .iter()
        .filter(|(cid, _)| cid.0 == 0)
        .map(|(_, s)| s.committed)
        .sum();
    assert_eq!(
        correct_committed, 3,
        "the correct client must finish all its transactions despite the stalled dependency"
    );
    cluster.audit().expect("serializable");
}

/// Throughput of correct clients survives a population of stall-early
/// Byzantine clients on a contended workload.
#[test]
fn correct_clients_progress_with_stall_early_byzantine_clients() {
    let config = byz_config(ClientStrategy::StallEarly, 6, 2);
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(contended_generator(client.0, 200))
    });
    let report = cluster.run_measured(Duration::from_millis(200), Duration::from_millis(600));
    assert!(
        report.committed > 30,
        "correct clients must keep committing, got {}",
        report.committed
    );
    cluster.audit().expect("serializable");
}

/// Same with stall-late clients (they decide but never write back).
#[test]
fn correct_clients_progress_with_stall_late_byzantine_clients() {
    let config = byz_config(ClientStrategy::StallLate, 6, 2);
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(contended_generator(client.0, 200))
    });
    let report = cluster.run_measured(Duration::from_millis(200), Duration::from_millis(600));
    assert!(
        report.committed > 30,
        "correct clients must keep committing, got {}",
        report.committed
    );
    cluster.audit().expect("serializable");
}

/// Forced equivocation: Byzantine clients log conflicting ST2 decisions. The
/// divergent-case fallback (leader election) reconciles them, correct clients
/// keep committing, and no transaction ends up both committed and aborted.
#[test]
fn forced_equivocation_is_reconciled_by_fallback() {
    let config = byz_config(ClientStrategy::EquivForced, 6, 2);
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(contended_generator(client.0, 100))
    });
    let report = cluster.run_measured(Duration::from_millis(200), Duration::from_millis(800));
    assert!(
        report.committed > 20,
        "correct clients must keep committing under equivocation, got {}",
        report.committed
    );
    cluster
        .audit()
        .expect("no divergent decisions despite equivocation");
}

/// Realistic equivocation (only when the votes allow it) almost never
/// succeeds on an uncontended workload — matching the paper's observation
/// that equiv-real has no effect without contention.
#[test]
fn realistic_equivocation_is_rare_without_contention() {
    let config = byz_config(ClientStrategy::EquivReal, 4, 2);
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(YcsbGenerator::rw_uniform(client.0, 100_000, 2, 2))
    });
    cluster.run_for(Duration::from_millis(500));
    let equivocations: u64 = cluster
        .client_stats()
        .iter()
        .map(|(_, s)| s.equivocations)
        .sum();
    assert_eq!(
        equivocations, 0,
        "without contention Byzantine clients cannot assemble both quorums"
    );
    cluster.audit().expect("serializable");
}

/// Byzantine replicas that always vote abort disable the fast path but cannot
/// abort transactions on their own (Byzantine independence): with f = 1
/// abort-voting replica, transactions still commit via the slow path.
#[test]
fn abort_voting_replica_cannot_kill_transactions() {
    let mut config = ClusterConfig::basil_default(3)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()));
    config.replica_behaviors = vec![(
        basil::ReplicaId::new(basil::ShardId(0), 5),
        ReplicaBehavior::AlwaysVoteAbort,
    )];
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(YcsbGenerator::rw_uniform(client.0, 50_000, 2, 2))
    });
    let report = cluster.run_measured(Duration::from_millis(150), Duration::from_millis(400));
    assert!(
        report.committed > 50,
        "one abort-voting replica must not block commits, got {}",
        report.committed
    );
    assert!(
        report.fast_path_fraction < 0.05,
        "the fast path needs unanimity, so it should be gone, got {}",
        report.fast_path_fraction
    );
    cluster.audit().expect("serializable");
}

/// A replica that withholds its ST1 votes entirely also cannot stop progress
/// (the commit quorum is 3f + 1 = 4 of 6).
#[test]
fn vote_withholding_replica_cannot_block_progress() {
    let mut config = ClusterConfig::basil_default(3)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()));
    config.replica_behaviors = vec![(
        basil::ReplicaId::new(basil::ShardId(0), 2),
        ReplicaBehavior::WithholdVotes,
    )];
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(YcsbGenerator::rw_uniform(client.0, 50_000, 2, 2))
    });
    let report = cluster.run_measured(Duration::from_millis(150), Duration::from_millis(400));
    assert!(report.committed > 50, "got {}", report.committed);
    cluster.audit().expect("serializable");
}

/// The per-transaction fallback counters are actually exercised when
/// dependencies stall (sanity check that the recovery path, not a timeout
/// retry, is what finishes the work).
#[test]
fn fallback_invocations_are_recorded_for_stalled_dependencies() {
    let config = byz_config(ClientStrategy::StallEarly, 2, 1)
        .with_initial_data(vec![(Key::new("hot"), Value::from_u64(1))]);
    let mut cluster = BasilCluster::build(config, |client: ClientId| {
        if client.0 == 1 {
            Box::new(ScriptedGenerator::new([TxProfile::new(
                "byz-write",
                vec![Op::Write(Key::new("hot"), Value::from_u64(99))],
            )]))
        } else {
            Box::new(ScriptedGenerator::new(vec![
                TxProfile::new(
                    "dependent",
                    vec![
                        Op::Read(Key::new("hot")),
                        Op::Write(Key::new("out"), Value::from_u64(5)),
                    ],
                );
                2
            ]))
        }
    });
    cluster.run_for(Duration::from_secs(2));
    let honest_client = cluster
        .sim()
        .actor::<BasilClient>(NodeId::Client(ClientId(0)))
        .expect("honest client");
    assert!(
        honest_client.stats().fallback_invocations > 0
            || honest_client.stats().dependent_reads == 0,
        "if a dependency was acquired on the stalled write, recovery must have been invoked"
    );
    assert_eq!(honest_client.stats().committed, 2);
}
