//! Golden determinism test for the thread-sharded parallel runtime.
//!
//! The serial `Simulation` is the bit-for-bit oracle: for a fixed seed, a
//! `RuntimeMode::Parallel(n)` run must produce the *identical* simulated
//! results — commit/abort counts, path split, and the digest over the exact
//! committed-transaction set — for any worker count. The scenario and the
//! pinned values are the same as `tests/determinism_equivalence.rs` (the
//! zero-copy message-plane golden test, captured at commit a89501c), so
//! this test simultaneously proves the parallel runtime against the oracle
//! *and* against the pre-refactor binary.
//!
//! The inline threshold is forced to 0 so every epoch really crosses the
//! worker threads (with the default threshold, small epochs would run
//! inline on the driver and the test would prove less than it claims).

use basil::cluster::RuntimeMode;
use basil::harness::{BasilCluster, ClusterConfig};
use basil::workloads::ycsb::YcsbGenerator;
use basil::{BasilConfig, Duration, SystemConfig};

/// Values captured from the pre-refactor binary (commit a89501c); identical
/// to `tests/determinism_equivalence.rs`. Scenario: 3 shards, 12 clients,
/// RW-U 2r2w over 10k keys, seed 7, 250 ms.
const EXPECTED_COMMITTED: u64 = 992;
const EXPECTED_ABORTED: u64 = 12;
const EXPECTED_FAST: u64 = 999;
const EXPECTED_SLOW: u64 = 5;
const EXPECTED_HISTORY_DIGEST: &str =
    "e275d26a31fe5101bbbf203382700ab764d90a6b8a18701e0d4628e934669d59";

fn run_scenario(runtime: RuntimeMode) -> BasilCluster {
    let basil = BasilConfig::bench(SystemConfig::sharded(3)).with_batch_size(16);
    let config = ClusterConfig::basil_default(12)
        .with_basil(basil)
        .with_seed(7)
        .with_runtime(runtime)
        // Force every epoch through the worker threads.
        .with_parallel_tuning(None, Some(0));
    let mut cluster = BasilCluster::build(config, |cid| {
        Box::new(YcsbGenerator::rw_uniform(
            7u64.wrapping_add(cid.0.wrapping_mul(7919)),
            10_000,
            2,
            2,
        ))
    });
    cluster.run_for(Duration::from_millis(250));
    cluster
}

fn assert_matches_oracle(cluster: &BasilCluster, label: &str) {
    let snap = cluster.snapshot();
    let digest = cluster.committed_history_digest();
    assert_eq!(snap.committed, EXPECTED_COMMITTED, "{label}: committed");
    assert_eq!(snap.aborted_attempts, EXPECTED_ABORTED, "{label}: aborted");
    assert_eq!(snap.fast_path, EXPECTED_FAST, "{label}: fast-path");
    assert_eq!(snap.slow_path, EXPECTED_SLOW, "{label}: slow-path");
    assert_eq!(digest, EXPECTED_HISTORY_DIGEST, "{label}: history digest");
    cluster.audit().expect("history serializable");
}

#[test]
fn serial_oracle_matches_pinned_values() {
    let cluster = run_scenario(RuntimeMode::Serial);
    assert_eq!(cluster.runtime_mode(), RuntimeMode::Serial);
    assert_matches_oracle(&cluster, "serial");
}

#[test]
fn parallel_2_workers_is_decision_identical_to_the_oracle() {
    let cluster = run_scenario(RuntimeMode::Parallel(2));
    assert_eq!(cluster.runtime_mode(), RuntimeMode::Parallel(2));
    assert_matches_oracle(&cluster, "parallel:2");
}

#[test]
fn parallel_4_workers_is_decision_identical_to_the_oracle() {
    let cluster = run_scenario(RuntimeMode::Parallel(4));
    assert_matches_oracle(&cluster, "parallel:4");
}

/// Beyond the decision counts: the full simulator metrics (event counts,
/// message counts, per-node CPU accounting) are identical too — the trace
/// itself is reproduced, not just its outcome.
#[test]
fn parallel_metrics_are_bit_identical_to_serial() {
    let serial = run_scenario(RuntimeMode::Serial);
    let parallel = run_scenario(RuntimeMode::Parallel(3));
    let sm = serial.sim().metrics();
    let pm = parallel.sim().metrics();
    assert_eq!(pm.events_processed, sm.events_processed);
    assert_eq!(pm.messages_sent, sm.messages_sent);
    assert_eq!(pm.messages_delivered, sm.messages_delivered);
    assert_eq!(pm.messages_dropped, sm.messages_dropped);
    assert_eq!(pm.last_event_at, sm.last_event_at);
    for (id, snode) in &sm.per_node {
        let pnode = pm.per_node.get(id).expect("node present in parallel run");
        assert_eq!(pnode.messages_processed, snode.messages_processed, "{id:?}");
        assert_eq!(pnode.timers_fired, snode.timers_fired, "{id:?}");
        assert_eq!(pnode.cpu_busy, snode.cpu_busy, "{id:?}");
        assert_eq!(pnode.queue_wait, snode.queue_wait, "{id:?}");
        assert_eq!(pnode.messages_sent, snode.messages_sent, "{id:?}");
    }
    // The measured report agrees as well and records its runtime.
    assert_eq!(serial.total_committed(), parallel.total_committed());
}
