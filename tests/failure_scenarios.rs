//! The Figure 7 failure scenario as an integration test, run under both
//! runtimes.
//!
//! Figure 7 measures Basil under Byzantine-client attacks; this test ports
//! that scenario — a contended Zipfian workload with 30% equivocating
//! Byzantine clients — and layers the fault injections the figure binaries
//! drive interactively: a replica crash and restart, and a network
//! partition that isolates a replica for part of the run. The whole
//! scenario executes once on `RuntimeMode::Serial` (the determinism
//! oracle) and once on `RuntimeMode::Parallel(3)` with every epoch forced
//! through the worker threads, and the two runs must agree on *every*
//! decision: commit/abort counts, path split, fallback count, the digest
//! of the committed set, and each replica's per-transaction decision.

use basil::cluster::RuntimeMode;
use basil::harness::{BasilCluster, ClusterConfig};
use basil::workloads::ycsb::YcsbGenerator;
use basil::{
    BasilConfig, Duration, NodeId, Partition, ReplicaId, ShardId, SystemConfig, Transaction,
};
use basil_core::byzantine::{ClientStrategy, FaultProfile};
use basil_store::mvtso::Decision;

const CLIENTS: u32 = 10;
const BYZANTINE: u32 = 3; // 30%, the paper's headline fraction

fn run_scenario(runtime: RuntimeMode) -> BasilCluster {
    let basil = BasilConfig::bench(SystemConfig::single_shard_f1()).with_batch_size(16);
    let config = ClusterConfig::basil_default(CLIENTS)
        .with_basil(basil)
        .with_byzantine_clients(
            BYZANTINE,
            FaultProfile {
                strategy: ClientStrategy::EquivReal,
                faulty_fraction: 1.0,
            },
        )
        .with_seed(23)
        .with_runtime(runtime)
        .with_parallel_tuning(None, Some(0));
    let mut cluster = BasilCluster::build(config, |cid| {
        Box::new(YcsbGenerator::rw_zipf(
            23u64.wrapping_add(cid.0.wrapping_mul(7919)),
            5_000,
            2,
            2,
            0.9,
        ))
    });

    // Phase 1: fault-free warmup.
    cluster.run_for(Duration::from_millis(60));

    // Phase 2: crash replica 4 (f = 1 tolerates it; protocol must proceed).
    let crashed = ReplicaId::new(ShardId(0), 4);
    cluster.crash_replica(crashed);
    cluster.run_for(Duration::from_millis(60));

    // Phase 3: restart it, and partition replica 5 away instead.
    cluster.sim_mut().restart(NodeId::Replica(crashed));
    let isolated = NodeId::Replica(ReplicaId::new(ShardId(0), 5));
    let pidx = cluster
        .sim_mut()
        .add_partition(Partition::isolating([isolated]));
    cluster
        .sim_mut()
        .partition_mut(pidx)
        .expect("partition")
        .activate();
    cluster.run_for(Duration::from_millis(60));

    // Phase 4: heal and drain.
    cluster
        .sim_mut()
        .partition_mut(pidx)
        .expect("partition")
        .heal();
    cluster.run_for(Duration::from_millis(120));
    cluster
}

/// Every replica's decision for every transaction that appears anywhere in
/// the committed union, as a sorted, comparable vector.
fn decision_map(cluster: &BasilCluster) -> Vec<(ReplicaId, [u8; 32], Option<Decision>)> {
    let committed: Vec<Transaction> = cluster.committed_transactions();
    let mut out = Vec::new();
    for rid in cluster.replica_ids() {
        for tx in &committed {
            let d = cluster
                .sim()
                .actor::<basil_core::BasilReplica>(NodeId::Replica(*rid))
                .and_then(|r| r.store().decision(&tx.id()));
            out.push((*rid, *tx.id().as_bytes(), d));
        }
    }
    out.sort();
    out
}

#[test]
fn fig7_failure_scenario_is_identical_across_runtimes() {
    let serial = run_scenario(RuntimeMode::Serial);
    let parallel = run_scenario(RuntimeMode::Parallel(3));

    let s = serial.snapshot();
    let p = parallel.snapshot();
    assert_eq!(p.committed, s.committed, "committed");
    assert_eq!(p.aborted_attempts, s.aborted_attempts, "aborted attempts");
    assert_eq!(p.fast_path, s.fast_path, "fast-path decisions");
    assert_eq!(p.slow_path, s.slow_path, "slow-path decisions");
    assert_eq!(p.fallbacks, s.fallbacks, "fallback invocations");
    assert_eq!(p.byz_committed, s.byz_committed, "byzantine commits");
    assert_eq!(
        parallel.committed_history_digest(),
        serial.committed_history_digest(),
        "committed-set digest"
    );
    assert_eq!(
        decision_map(&parallel),
        decision_map(&serial),
        "per-replica decisions"
    );

    // The scenario is meaningful: work committed in every phase, the crash
    // dropped traffic, and correct clients kept making progress with 30%
    // Byzantine clients (the paper's graceful-degradation claim).
    assert!(s.committed > 100, "correct clients progressed: {s:?}");
    assert!(
        serial.sim().metrics().messages_dropped > 0,
        "crash/partition actually dropped messages"
    );
    serial.audit().expect("serial history serializable");
    parallel.audit().expect("parallel history serializable");
}
