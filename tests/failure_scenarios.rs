//! The Figure 7 failure scenario as a declarative [`ScenarioSpec`], run
//! under both runtimes.
//!
//! Figure 7 measures Basil under Byzantine-client attacks; this test ports
//! that scenario — a contended Zipfian workload with 30% equivocating
//! Byzantine clients — and layers the fault injections the figure binaries
//! drive interactively: a replica crash and restart, and a network
//! partition that isolates another replica for part of the run. Where this
//! test once hand-coded the phase schedule against the harness, the whole
//! adversary is now *data*: one spec, compiled by `basil_scenario::runner`
//! onto the simulator seam, executed once on `RuntimeMode::Serial` (the
//! determinism oracle) and once on `RuntimeMode::Parallel(3)` with every
//! epoch forced through the worker threads. The two runs must agree on
//! *every* decision: commit/abort counts, path split, fallback count, the
//! digest of the committed set, and each replica's per-transaction
//! decision digest.

use basil::cluster::RuntimeMode;
use basil_core::byzantine::ClientStrategy;
use basil_scenario::runner::run_basil_spec;
use basil_scenario::spec::{FaultBudget, FaultEvent, RecoveryMode, ScenarioSpec, WorkloadSpec};

const CLIENTS: u32 = 10;
const BYZANTINE: u32 = 3; // 30%, the paper's headline fraction

/// The fig7 adversary as data: crash replica 4 at 60 ms (restart at
/// 120 ms), partition replica 5 during [120 ms, 180 ms), on a contended
/// Zipf workload with 30% equivocating clients. Two distinct replicas are
/// perturbed, so the benign budget is 2 — more than `f`, which correctly
/// disarms the liveness check (safety is still audited); the progress
/// assertions below stand in for it.
fn fig7_spec() -> ScenarioSpec {
    let spec = ScenarioSpec {
        name: "fig7-failures".into(),
        seed: 23,
        clients: CLIENTS,
        byz_clients: BYZANTINE,
        byz_strategy: ClientStrategy::EquivReal,
        byz_fraction: 1.0,
        f: 1,
        batch_size: 16,
        relax_st2: false,
        warmup_ms: 60,
        duration_ms: 300,
        tail_ms: 60,
        budget: FaultBudget {
            crash: 2,
            deceit: 0,
        },
        workload: WorkloadSpec::RwZipf {
            reads: 2,
            writes: 2,
            keys: 5_000,
            theta: 0.9,
        },
        faults: vec![
            FaultEvent::Crash {
                replica: 4,
                at_ms: 60,
                restart_ms: Some(120),
                recovery: RecoveryMode::Warm,
            },
            FaultEvent::PartitionReplica {
                replica: 5,
                at_ms: 120,
                heal_ms: 180,
            },
        ],
        expect: None,
    };
    spec.validate().expect("fig7 spec is well-formed");
    spec
}

#[test]
fn fig7_failure_scenario_is_identical_across_runtimes() {
    let spec = fig7_spec();
    let serial = run_basil_spec(&spec, RuntimeMode::Serial);
    let parallel = run_basil_spec(&spec, RuntimeMode::Parallel(3));

    assert_eq!(parallel.committed, serial.committed, "committed");
    assert_eq!(
        parallel.aborted_attempts, serial.aborted_attempts,
        "aborted attempts"
    );
    assert_eq!(parallel.fast_path, serial.fast_path, "fast-path decisions");
    assert_eq!(parallel.slow_path, serial.slow_path, "slow-path decisions");
    assert_eq!(parallel.fallbacks, serial.fallbacks, "fallback invocations");
    assert_eq!(
        parallel.byz_committed, serial.byz_committed,
        "byzantine commits"
    );
    assert_eq!(parallel.digest, serial.digest, "committed-set digest");
    assert_eq!(
        parallel.decisions_digest, serial.decisions_digest,
        "per-replica decisions"
    );
    assert!(
        !serial.diverges_from(&parallel),
        "runtimes agree on every compared field"
    );

    // The scenario is meaningful: work committed in every phase, the crash
    // dropped traffic, and correct clients kept making progress with 30%
    // Byzantine clients (the paper's graceful-degradation claim).
    assert!(
        serial.committed > 100,
        "correct clients progressed: {serial:?}"
    );
    assert!(
        serial.tail_committed > 0,
        "progress after the faults healed: {serial:?}"
    );
    assert!(
        serial.messages_dropped > 0,
        "crash/partition actually dropped messages"
    );
    assert_eq!(serial.audit_failure, None, "serial history serializable");
    assert_eq!(
        parallel.audit_failure, None,
        "parallel history serializable"
    );
}
