//! The unified-harness contract: the same scripted workload driven through
//! the Basil protocol adapter and a baseline protocol adapter, both riding
//! the one generic `ProtocolCluster` engine, must produce non-zero commits
//! and serializable histories from the shared machinery.

use basil::baseline_harness::{BaselineCluster, BaselineClusterConfig};
use basil::baselines::{BaselineConfig, SystemKind};
use basil::harness::{BasilCluster, ClusterConfig};
use basil::{Duration, Key, Op, ScriptedGenerator, TxProfile, Value};

/// The shared scripted workload: every client runs the same short mix of
/// blind writes, reads, and read-modify-writes over a small keyspace.
fn scripted_profiles(client: u64) -> Vec<TxProfile> {
    (0..6)
        .map(|i| {
            let k = (client + i) % 4;
            TxProfile::new(
                "mix",
                vec![
                    Op::Read(Key::new(format!("k{k}"))),
                    Op::RmwAdd {
                        key: Key::new(format!("c{k}")),
                        delta: 1,
                    },
                    Op::Write(Key::new(format!("w{client}")), Value::from_u64(i)),
                ],
            )
        })
        .collect()
}

fn initial_data() -> Vec<(Key, Value)> {
    (0..4)
        .flat_map(|k| {
            [
                (Key::new(format!("k{k}")), Value::from_u64(10)),
                (Key::new(format!("c{k}")), Value::from_u64(0)),
            ]
        })
        .collect()
}

/// Both adapters, one engine: identical scripted workloads through Basil and
/// TAPIR-style clusters; both histories serializable, both with commits, and
/// the shared audit/measurement machinery works for each.
#[test]
fn same_workload_through_both_adapters_is_serializable() {
    // Basil adapter.
    let basil_config = ClusterConfig::basil_default(3)
        .with_initial_data(initial_data())
        .with_seed(17);
    let mut basil_cluster = BasilCluster::build(basil_config, |client| {
        Box::new(ScriptedGenerator::new(scripted_profiles(client.0)))
    });
    basil_cluster.run_for(Duration::from_secs(2));
    let basil_committed = basil_cluster.total_committed();
    assert!(
        basil_committed > 0,
        "Basil adapter must commit transactions from the shared engine"
    );
    basil_cluster
        .audit()
        .expect("Basil history must be serializable");

    // Baseline adapter on the same engine, same workload.
    let baseline_config = BaselineClusterConfig::new(BaselineConfig::new(SystemKind::Tapir), 3)
        .with_initial_data(initial_data())
        .with_seed(17);
    let mut baseline_cluster = BaselineCluster::build(baseline_config, |client| {
        Box::new(ScriptedGenerator::new(scripted_profiles(client.0)))
    });
    baseline_cluster.run_for(Duration::from_secs(2));
    let baseline_committed = baseline_cluster.total_committed();
    assert!(
        baseline_committed > 0,
        "baseline adapter must commit transactions from the shared engine"
    );
    baseline_cluster
        .audit()
        .expect("baseline history must be serializable");

    // The shared engine exposes the same inspection surface for both: the
    // committed counters key `c0..c3` must reflect applied increments.
    for cluster_value in [
        basil_cluster.latest_value(&Key::new("c0")),
        baseline_cluster.latest_value(&Key::new("c0")),
    ] {
        assert!(cluster_value.is_some(), "counter key must exist on both");
    }
}

/// The generic engine's measurement window works identically for both
/// adapters (same `RunReport` type from the same code path).
#[test]
fn shared_measurement_window_reports_for_both_adapters() {
    let basil_config = ClusterConfig::basil_default(2).with_seed(23);
    let mut basil_cluster = BasilCluster::build(basil_config, |client| {
        Box::new(basil::workloads::ycsb::YcsbGenerator::rw_uniform(
            client.0, 10_000, 2, 2,
        ))
    });
    let basil_report =
        basil_cluster.run_measured(Duration::from_millis(100), Duration::from_millis(300));
    assert!(basil_report.committed > 0);
    assert!(basil_report.throughput_tps > 0.0);

    let baseline_config =
        BaselineClusterConfig::new(BaselineConfig::new(SystemKind::Tapir), 2).with_seed(23);
    let mut baseline_cluster = BaselineCluster::build(baseline_config, |client| {
        Box::new(basil::workloads::ycsb::YcsbGenerator::rw_uniform(
            client.0, 10_000, 2, 2,
        ))
    });
    let baseline_report =
        baseline_cluster.run_measured(Duration::from_millis(100), Duration::from_millis(300));
    assert!(baseline_report.committed > 0);
    assert!(baseline_report.throughput_tps > 0.0);
}
