//! End-to-end integration tests for the baseline systems (TAPIR-style,
//! TxHotstuff, TxBFT-SMaRt) running on the same simulator and workloads.

use basil::baseline_harness::{BaselineCluster, BaselineClusterConfig};
use basil::baselines::{BaselineConfig, SystemKind};
use basil::workloads::ycsb::YcsbGenerator;
use basil::{Duration, Key, Op, ScriptedGenerator, TxProfile, Value};

fn counter_profiles(count: usize) -> Vec<TxProfile> {
    vec![
        TxProfile::new(
            "incr",
            vec![Op::RmwAdd {
                key: Key::new("counter"),
                delta: 1,
            }],
        );
        count
    ]
}

fn run_counter_workload(kind: SystemKind) -> (u64, u64) {
    let config = BaselineClusterConfig::new(BaselineConfig::new(kind).with_batch_size(1), 3)
        .with_initial_data(vec![(Key::new("counter"), Value::from_u64(0))]);
    let mut cluster = BaselineCluster::build(config, |_| {
        Box::new(ScriptedGenerator::new(counter_profiles(8)))
    });
    cluster.run_for(Duration::from_secs(3));
    let committed = cluster.total_committed();
    let value = cluster
        .latest_value(&Key::new("counter"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    (committed, value)
}

/// Counter increments applied through each baseline are exact: the committed
/// count equals the final counter value (no lost or duplicated updates).
#[test]
fn tapir_counter_is_exact() {
    let (committed, value) = run_counter_workload(SystemKind::Tapir);
    assert!(committed > 0);
    assert_eq!(committed, value);
}

#[test]
fn hotstuff_counter_is_exact() {
    let (committed, value) = run_counter_workload(SystemKind::TxHotstuff);
    assert!(committed > 0);
    assert_eq!(committed, value);
}

#[test]
fn bftsmart_counter_is_exact() {
    let (committed, value) = run_counter_workload(SystemKind::TxBftSmart);
    assert!(committed > 0);
    assert_eq!(committed, value);
}

/// All three baselines sustain an uncontended YCSB workload.
#[test]
fn baselines_sustain_ycsb_uniform() {
    for kind in [
        SystemKind::Tapir,
        SystemKind::TxHotstuff,
        SystemKind::TxBftSmart,
    ] {
        let config = BaselineClusterConfig::new(BaselineConfig::new(kind), 4).with_seed(5);
        let mut cluster = BaselineCluster::build(config, |client| {
            Box::new(YcsbGenerator::rw_uniform(client.0, 100_000, 2, 2))
        });
        let report = cluster.run_measured(Duration::from_millis(150), Duration::from_millis(400));
        assert!(
            report.committed > 20,
            "{} committed too little: {}",
            kind.name(),
            report.committed
        );
    }
}

/// Cross-shard transactions commit atomically in the ordered baselines.
#[test]
fn ordered_baseline_cross_shard_transfers_conserve_money() {
    let config = BaselineClusterConfig::new(
        BaselineConfig::new(SystemKind::TxBftSmart)
            .with_shards(2)
            .with_batch_size(1),
        2,
    )
    .with_initial_data(
        (0..10)
            .map(|i| (Key::new(format!("acct{i}")), Value::from_u64(100)))
            .collect(),
    );
    let mut cluster = BaselineCluster::build(config, |client| {
        let profiles: Vec<TxProfile> = (0..6)
            .map(|i| {
                let from = (client.0 * 6 + i) % 10;
                let to = (from + 3) % 10;
                TxProfile::new(
                    "transfer",
                    vec![
                        Op::RmwAdd {
                            key: Key::new(format!("acct{from}")),
                            delta: -5,
                        },
                        Op::RmwAdd {
                            key: Key::new(format!("acct{to}")),
                            delta: 5,
                        },
                    ],
                )
            })
            .collect();
        Box::new(ScriptedGenerator::new(profiles))
    });
    cluster.run_for(Duration::from_secs(3));
    assert!(cluster.total_committed() > 0);
    let total: u64 = (0..10)
        .map(|i| {
            cluster
                .latest_value(&Key::new(format!("acct{i}")))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(total, 1_000, "transfers must conserve the total balance");
}

/// TAPIR is faster than the BFT baselines on the same workload (the paper's
/// headline ordering), and commits with lower latency.
#[test]
fn tapir_outperforms_ordered_bft_baselines() {
    let run = |kind: SystemKind| {
        let config = BaselineClusterConfig::new(BaselineConfig::new(kind), 6).with_seed(9);
        let mut cluster = BaselineCluster::build(config, |client| {
            Box::new(YcsbGenerator::rw_uniform(client.0, 100_000, 2, 2))
        });
        cluster.run_measured(Duration::from_millis(150), Duration::from_millis(400))
    };
    let tapir = run(SystemKind::Tapir);
    let hotstuff = run(SystemKind::TxHotstuff);
    let bftsmart = run(SystemKind::TxBftSmart);
    assert!(
        tapir.throughput_tps > hotstuff.throughput_tps,
        "TAPIR {} <= TxHotstuff {}",
        tapir.throughput_tps,
        hotstuff.throughput_tps
    );
    assert!(
        tapir.throughput_tps > bftsmart.throughput_tps,
        "TAPIR {} <= TxBFT-SMaRt {}",
        tapir.throughput_tps,
        bftsmart.throughput_tps
    );
    assert!(
        tapir.mean_latency_ms < hotstuff.mean_latency_ms,
        "TAPIR latency {} >= TxHotstuff latency {}",
        tapir.mean_latency_ms,
        hotstuff.mean_latency_ms
    );
}
