//! Determinism test for the open-loop throughput plane.
//!
//! Open-loop driving adds a second source of scheduled events — Poisson
//! arrival timers that fire independently of protocol progress — plus the
//! admission queue and load shedding. None of that may perturb determinism:
//! for a fixed seed, the serial oracle and the thread-sharded parallel
//! runtime must agree bit-for-bit on every simulated result, including the
//! new offered/shed accounting. The inline threshold is forced to 0 so
//! every epoch really crosses the worker threads.

use basil::cluster::RuntimeMode;
use basil::harness::{BasilCluster, ClusterConfig};
use basil::workloads::poisson::PoissonTxGenerator;
use basil::workloads::ycsb::YcsbGenerator;
use basil::{BasilConfig, Duration, SystemConfig};

/// A rate chosen past the per-client saturation point so the admission
/// queue actually fills and shedding participates in the run.
const RATE_TPS: f64 = 900.0;

fn run_scenario(runtime: RuntimeMode) -> BasilCluster {
    let basil = BasilConfig::bench(SystemConfig::sharded(2))
        .with_batch_size(16)
        .with_admission_bound(8);
    let basil = basil
        .clone()
        .with_verify_grouping(basil.system.batch_timeout);
    let config = ClusterConfig::basil_default(8)
        .with_basil(basil)
        .with_seed(11)
        .with_runtime(runtime)
        .with_parallel_tuning(None, Some(0));
    let mut cluster = BasilCluster::build(config, |cid| {
        let inner = YcsbGenerator::rw_zipf(
            11u64.wrapping_add(cid.0.wrapping_mul(7919)),
            10_000,
            2,
            2,
            0.9,
        );
        Box::new(PoissonTxGenerator::new(
            inner,
            11u64.wrapping_add(cid.0.wrapping_mul(104_729)),
            RATE_TPS,
        ))
    });
    cluster.run_for(Duration::from_millis(150));
    cluster
}

/// Everything the harness can observe about a run, summarized for equality.
fn fingerprint(cluster: &BasilCluster) -> (u64, u64, u64, u64, u64, u64, String) {
    let snap = cluster.snapshot();
    (
        snap.committed,
        snap.aborted_attempts,
        snap.fast_path,
        snap.slow_path,
        snap.offered,
        snap.shed,
        cluster.committed_history_digest(),
    )
}

#[test]
fn open_loop_poisson_is_identical_across_runtimes() {
    let serial = run_scenario(RuntimeMode::Serial);
    let oracle = fingerprint(&serial);
    // The scenario is meaningful: load arrived, committed, and was shed.
    assert!(oracle.0 > 0, "committed under open loop: {oracle:?}");
    assert!(oracle.4 > oracle.0, "offered exceeds committed: {oracle:?}");
    assert!(oracle.5 > 0, "saturating rate sheds load: {oracle:?}");
    serial.audit().expect("serial history serializable");

    for workers in [2, 4] {
        let parallel = run_scenario(RuntimeMode::Parallel(workers));
        assert_eq!(
            fingerprint(&parallel),
            oracle,
            "parallel:{workers} diverged from the serial oracle"
        );
        parallel.audit().expect("parallel history serializable");
    }
}

#[test]
fn open_loop_reruns_are_bit_identical() {
    assert_eq!(
        fingerprint(&run_scenario(RuntimeMode::Serial)),
        fingerprint(&run_scenario(RuntimeMode::Serial)),
    );
}
