//! End-to-end integration tests: whole Basil deployments running realistic
//! workloads inside the simulator.

use basil::harness::{BasilCluster, ClusterConfig};
use basil::workloads::ycsb::YcsbGenerator;
use basil::{BasilConfig, Duration, Key, Op, ScriptedGenerator, SystemConfig, TxProfile, Value};

/// A handful of clients running the uniform YCSB microbenchmark commit a
/// healthy number of transactions, almost always on the fast path, and the
/// resulting history is serializable.
#[test]
fn ycsb_uniform_commits_on_the_fast_path() {
    let config = ClusterConfig::basil_default(4)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()));
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(YcsbGenerator::rw_uniform(client.0, 100_000, 2, 2))
    });
    let report = cluster.run_measured(Duration::from_millis(100), Duration::from_millis(400));
    assert!(
        report.committed > 100,
        "expected substantial throughput, got {} commits",
        report.committed
    );
    assert!(
        report.fast_path_fraction > 0.9,
        "uncontended workload should use the fast path, got {}",
        report.fast_path_fraction
    );
    assert!(report.mean_latency_ms > 0.0);
    cluster.audit().expect("history must be serializable");
}

/// Transactions spanning multiple shards commit atomically and remain
/// serializable.
#[test]
fn cross_shard_transactions_commit() {
    let config = ClusterConfig::basil_default(3)
        .with_basil(BasilConfig::bench(SystemConfig::sharded(3)))
        .with_initial_data(
            (0..50)
                .map(|i| (Key::new(format!("acct{i}")), Value::from_u64(100)))
                .collect(),
        );
    // Each client transfers between two accounts that (very likely) live on
    // different shards.
    let mut cluster = BasilCluster::build(config, |client| {
        let profiles: Vec<TxProfile> = (0..20)
            .map(|i| {
                let from = (client.0 * 20 + i) % 50;
                let to = (from + 7) % 50;
                TxProfile::new(
                    "transfer",
                    vec![
                        Op::RmwAdd {
                            key: Key::new(format!("acct{from}")),
                            delta: -10,
                        },
                        Op::RmwAdd {
                            key: Key::new(format!("acct{to}")),
                            delta: 10,
                        },
                    ],
                )
            })
            .collect();
        Box::new(ScriptedGenerator::new(profiles))
    });
    cluster.run_for(Duration::from_millis(800));
    let committed = cluster.total_committed();
    assert!(
        committed >= 50,
        "most transfers should commit, got {committed}"
    );
    cluster.audit().expect("serializable");

    // Money conservation: transfers only move balance between accounts, so
    // the sum over all accounts must be unchanged (50 accounts x 100).
    let total: u64 = (0..50)
        .map(|i| {
            cluster
                .latest_value(&Key::new(format!("acct{i}")))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(total, 50 * 100, "balance must be conserved");
}

/// A contended Zipfian workload still commits and yields a serializable
/// history (aborts and retries are expected).
#[test]
fn contended_zipfian_workload_is_serializable() {
    let config = ClusterConfig::basil_default(6)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()))
        .with_seed(7);
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(YcsbGenerator::rw_zipf(client.0, 200, 2, 2, 0.9))
    });
    let report = cluster.run_measured(Duration::from_millis(100), Duration::from_millis(400));
    assert!(report.committed > 50, "got {}", report.committed);
    assert!(
        report.commit_rate > 0.3,
        "commit rate collapsed: {}",
        report.commit_rate
    );
    cluster.audit().expect("serializable despite contention");
}

/// The slow path (ST2 logging) still commits transactions when the fast path
/// is disabled.
#[test]
fn slow_path_only_configuration_commits() {
    let basil = BasilConfig::bench(SystemConfig::single_shard_f1()).without_fast_path();
    let config = ClusterConfig::basil_default(2).with_basil(basil);
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(YcsbGenerator::rw_uniform(client.0, 10_000, 2, 2))
    });
    let report = cluster.run_measured(Duration::from_millis(100), Duration::from_millis(300));
    assert!(report.committed > 20, "got {}", report.committed);
    assert!(
        report.fast_path_fraction < 0.01,
        "fast path should be disabled, got {}",
        report.fast_path_fraction
    );
    cluster.audit().expect("serializable");
}

/// Signatures disabled (Basil-NoProofs) must still produce correct,
/// serializable executions — it is a performance ablation, not a semantics
/// change.
#[test]
fn noproofs_configuration_is_still_correct() {
    let basil = BasilConfig::bench(SystemConfig::single_shard_f1()).without_proofs();
    let config = ClusterConfig::basil_default(2)
        .with_basil(basil)
        .with_initial_data(vec![(Key::new("x"), Value::from_u64(5))]);
    let mut cluster = BasilCluster::build(config, |client| {
        let profiles = vec![
            TxProfile::new(
                "incr",
                vec![Op::RmwAdd {
                    key: Key::new("x"),
                    delta: 1,
                }],
            );
            10
        ];
        let _ = client;
        Box::new(ScriptedGenerator::new(profiles))
    });
    cluster.run_for(Duration::from_millis(500));
    assert_eq!(cluster.total_committed(), 20);
    let final_value = cluster
        .latest_value(&Key::new("x"))
        .and_then(|v| v.as_u64())
        .expect("x exists");
    assert_eq!(final_value, 25, "all 20 increments applied exactly once");
    cluster.audit().expect("serializable");
}

/// Reply batching (batch size > 1) preserves correctness.
#[test]
fn batched_replies_preserve_correctness() {
    let basil = BasilConfig::bench(SystemConfig::single_shard_f1()).with_batch_size(8);
    let config = ClusterConfig::basil_default(4).with_basil(basil);
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(YcsbGenerator::rw_uniform(client.0, 50_000, 2, 2))
    });
    let report = cluster.run_measured(Duration::from_millis(100), Duration::from_millis(300));
    assert!(report.committed > 50, "got {}", report.committed);
    cluster.audit().expect("serializable");
}

/// A crashed (silent) replica within the fault threshold does not stop the
/// system: f = 1 of 6 replicas may fail.
#[test]
fn one_crashed_replica_does_not_block_progress() {
    let config = ClusterConfig::basil_default(3)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()));
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(YcsbGenerator::rw_uniform(client.0, 10_000, 2, 2))
    });
    let victim = cluster.replica_ids()[2];
    cluster.crash_replica(victim);
    let report = cluster.run_measured(Duration::from_millis(100), Duration::from_millis(400));
    assert!(
        report.committed > 50,
        "progress must continue with one crashed replica, got {}",
        report.committed
    );
    cluster.audit().expect("serializable");
}
