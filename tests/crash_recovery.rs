//! Real-crash recovery: amnesia restarts rebuilt from the durable WAL.
//!
//! A replica that crash-stops loses all volatile state; on restart it
//! replays its write-ahead log, pulls the decision certificates it missed
//! from peers (validated before apply), and only then serves buffered
//! traffic. These tests drive that path through the full cluster harness:
//! the recovered replica must converge to its peers' committed state, the
//! history must stay serializable, and every scripted transaction must
//! still commit.

use basil::harness::{BasilCluster, ClusterConfig};
use basil::{
    BasilConfig, BasilReplica, Duration, Key, NodeId, Op, ReplicaId, ScriptedGenerator, ShardId,
    TxProfile, Value,
};
use std::collections::BTreeSet;

const COUNTER: &str = "counter";
const CLIENTS: u32 = 4;
const TXS_PER_CLIENT: usize = 5;

fn build_counter_cluster(config: ClusterConfig) -> BasilCluster {
    let profiles = vec![
        TxProfile::new(
            "incr",
            vec![Op::RmwAdd {
                key: Key::new(COUNTER),
                delta: 1,
            }],
        );
        TXS_PER_CLIENT
    ];
    BasilCluster::build(config, move |_| {
        Box::new(ScriptedGenerator::new(profiles.clone()))
    })
}

/// The sorted committed transaction-id set a replica holds.
fn committed_ids(cluster: &BasilCluster, rid: ReplicaId) -> BTreeSet<[u8; 32]> {
    cluster
        .sim()
        .actor::<BasilReplica>(NodeId::Replica(rid))
        .expect("replica exists")
        .store()
        .committed_iter()
        .map(|tx| *tx.id().as_bytes())
        .collect()
}

#[test]
fn amnesia_restart_converges_to_the_peers_committed_state() {
    let config = ClusterConfig::basil_default(CLIENTS)
        .with_initial_data(vec![(Key::new(COUNTER), Value::from_u64(0))]);
    let mut cluster = build_counter_cluster(config);
    let victim = ReplicaId::new(ShardId(0), 2);

    cluster.run_for(Duration::from_millis(40));
    cluster.crash_replica(victim);
    cluster.run_for(Duration::from_millis(40));
    cluster.restart_replica_amnesia(victim);
    // Quiescence: the scripted workload drains long before the end, so
    // every replica sees every writeback.
    cluster.run_for(Duration::from_millis(320));

    let expected = (CLIENTS as u64) * (TXS_PER_CLIENT as u64);
    assert_eq!(
        cluster.total_committed(),
        expected,
        "every scripted tx commits"
    );
    assert_eq!(
        cluster.latest_value(&Key::new(COUNTER)),
        Some(Value::from_u64(expected)),
        "the counter reflects every committed increment"
    );
    cluster
        .audit()
        .expect("history serializable after recovery");

    let recovered = cluster
        .sim()
        .actor::<BasilReplica>(NodeId::Replica(victim))
        .expect("recovered replica exists");
    assert!(!recovered.is_recovering(), "catch-up finished");
    let stats = recovered.stats();
    assert!(stats.wal_appends > 0, "the WAL was written: {stats:?}");
    assert!(
        stats.catch_up_applied > 0,
        "decisions missed while down came from peers: {stats:?}"
    );

    // The recovered replica's committed set is bit-for-bit its peers'.
    let reference = committed_ids(&cluster, ReplicaId::new(ShardId(0), 0));
    assert!(!reference.is_empty());
    for rid in cluster.replica_ids().to_vec() {
        assert_eq!(
            committed_ids(&cluster, rid),
            reference,
            "replica {rid:?} diverges from the reference committed set"
        );
    }
}

#[test]
fn amnesia_recovery_is_identical_across_runtimes() {
    // The same crash + amnesia-restart schedule must produce bit-identical
    // results on the serial engine and the thread-sharded runtime.
    let run = |mode| {
        let config = ClusterConfig::basil_default(CLIENTS)
            .with_initial_data(vec![(Key::new(COUNTER), Value::from_u64(0))])
            .with_runtime(mode)
            .with_parallel_tuning(None, Some(0));
        let mut cluster = build_counter_cluster(config);
        let victim = ReplicaId::new(ShardId(0), 1);
        cluster.run_for(Duration::from_millis(40));
        cluster.crash_replica(victim);
        cluster.run_for(Duration::from_millis(40));
        cluster.restart_replica_amnesia(victim);
        cluster.run_for(Duration::from_millis(320));
        cluster.audit().expect("serializable");
        (
            cluster.total_committed(),
            cluster.committed_history_digest(),
        )
    };
    let serial = run(basil::cluster::RuntimeMode::Serial);
    let parallel = run(basil::cluster::RuntimeMode::Parallel(2));
    assert_eq!(serial, parallel, "serial vs Parallel(2) diverged");
}

#[test]
fn catch_up_buffer_bound_sheds_instead_of_growing() {
    // With the recovery replay buffer clamped to a single message, a
    // recovering replica under live traffic must shed held-back messages
    // rather than queue them. A second replica stays crashed for the whole
    // window, so the victim's catch-up cannot complete early (it waits for
    // every peer or the deadline) and live traffic is guaranteed to overflow
    // the one-slot buffer. Retransmission still drives the workload to
    // completion and the recovered replica still converges.
    let basil = BasilConfig::test_single_shard()
        .with_catch_up_buffer_bound(1)
        .with_catch_up_timeout(Duration::from_millis(60));
    let config = ClusterConfig::basil_default(CLIENTS)
        .with_basil(basil)
        .with_initial_data(vec![(Key::new(COUNTER), Value::from_u64(0))]);
    let mut cluster = build_counter_cluster(config);
    let victim = ReplicaId::new(ShardId(0), 2);
    let silent_peer = ReplicaId::new(ShardId(0), 4);

    cluster.run_for(Duration::from_millis(20));
    cluster.crash_replica(silent_peer);
    cluster.crash_replica(victim);
    cluster.run_for(Duration::from_millis(10));
    cluster.restart_replica_amnesia(victim);
    // The victim stays in catch-up for the full 60 ms deadline (the silent
    // peer never answers its CatchUpRequest) while clients keep the counter
    // workload running against the four live replicas.
    cluster.run_for(Duration::from_millis(80));
    cluster.restart_replica_amnesia(silent_peer);
    cluster.run_for(Duration::from_millis(600));

    let expected = (CLIENTS as u64) * (TXS_PER_CLIENT as u64);
    assert_eq!(cluster.total_committed(), expected, "shedding is not loss");
    cluster.audit().expect("serializable despite shedding");

    let recovered = cluster
        .sim()
        .actor::<BasilReplica>(NodeId::Replica(victim))
        .expect("recovered replica exists");
    let stats = recovered.stats();
    assert!(
        stats.catch_up_buffered <= 1,
        "the buffer respected its bound: {stats:?}"
    );
    // The held-open catch-up window with live clients guarantees overflow.
    assert!(
        stats.catch_up_shed > 0,
        "overflow messages were shed, not queued: {stats:?}"
    );
}

#[test]
fn charged_fsync_cost_slows_but_does_not_break_recovery() {
    // A non-zero per-append fsync cost charges simulated time on every WAL
    // write. The run still commits everything and survives an amnesia
    // restart; it just spends longer doing it.
    let basil = BasilConfig::test_single_shard().with_wal_fsync(Duration::from_micros(50));
    let config = ClusterConfig::basil_default(CLIENTS)
        .with_basil(basil)
        .with_initial_data(vec![(Key::new(COUNTER), Value::from_u64(0))]);
    let mut cluster = build_counter_cluster(config);
    let victim = ReplicaId::new(ShardId(0), 3);

    cluster.run_for(Duration::from_millis(40));
    cluster.crash_replica(victim);
    cluster.run_for(Duration::from_millis(40));
    cluster.restart_replica_amnesia(victim);
    cluster.run_for(Duration::from_millis(400));

    let expected = (CLIENTS as u64) * (TXS_PER_CLIENT as u64);
    assert_eq!(cluster.total_committed(), expected);
    cluster.audit().expect("serializable with charged fsyncs");
    let recovered = cluster
        .sim()
        .actor::<BasilReplica>(NodeId::Replica(victim))
        .expect("recovered replica exists");
    assert!(recovered.stats().wal_appends > 0);
}
