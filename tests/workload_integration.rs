//! Integration of the application benchmarks (TPC-C, Smallbank, Retwis) with
//! the Basil cluster: each workload runs end-to-end, commits transactions of
//! every type, and leaves a serializable history.

use basil::harness::{BasilCluster, ClusterConfig};
use basil::workloads::retwis::RetwisGenerator;
use basil::workloads::smallbank::SmallbankGenerator;
use basil::workloads::tpcc::TpccGenerator;
use basil::{BasilConfig, Duration, SystemConfig};

#[test]
fn tpcc_runs_on_basil() {
    let config = ClusterConfig::basil_default(4)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()))
        .with_seed(21);
    let mut cluster =
        BasilCluster::build(config, |client| Box::new(TpccGenerator::new(client.0, 20)));
    let report = cluster.run_measured(Duration::from_millis(200), Duration::from_millis(600));
    assert!(report.committed > 10, "got {} commits", report.committed);
    // The two dominant transaction types must both be committing.
    assert!(
        report.per_label.get("new_order").copied().unwrap_or(0) > 0,
        "no new_order commits: {:?}",
        report.per_label
    );
    assert!(
        report.per_label.get("payment").copied().unwrap_or(0) > 0,
        "no payment commits: {:?}",
        report.per_label
    );
    cluster.audit().expect("TPC-C history serializable");
}

#[test]
fn smallbank_runs_on_basil() {
    let config = ClusterConfig::basil_default(4)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()))
        .with_seed(22);
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(SmallbankGenerator::new(client.0, 10_000, 100, 0.9))
    });
    let report = cluster.run_measured(Duration::from_millis(200), Duration::from_millis(600));
    assert!(report.committed > 30, "got {} commits", report.committed);
    assert!(
        report.commit_rate > 0.5,
        "commit rate {}",
        report.commit_rate
    );
    cluster.audit().expect("Smallbank history serializable");
}

#[test]
fn retwis_runs_on_basil() {
    let config = ClusterConfig::basil_default(4)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()))
        .with_seed(23);
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(RetwisGenerator::paper_config(client.0, 100_000))
    });
    let report = cluster.run_measured(Duration::from_millis(200), Duration::from_millis(600));
    assert!(report.committed > 30, "got {} commits", report.committed);
    // Read-dominated mix: timelines must be committing.
    assert!(
        report.per_label.get("get_timeline").copied().unwrap_or(0) > 0,
        "no get_timeline commits: {:?}",
        report.per_label
    );
    cluster.audit().expect("Retwis history serializable");
}

#[test]
fn tpcc_runs_on_a_sharded_deployment() {
    let config = ClusterConfig::basil_default(4)
        .with_basil(BasilConfig::bench(SystemConfig::sharded(3)))
        .with_seed(24);
    let mut cluster =
        BasilCluster::build(config, |client| Box::new(TpccGenerator::new(client.0, 20)));
    let report = cluster.run_measured(Duration::from_millis(200), Duration::from_millis(600));
    assert!(report.committed > 5, "got {} commits", report.committed);
    cluster.audit().expect("sharded TPC-C history serializable");
}

/// The contention ordering the paper reports: TPC-C (hot warehouse rows)
/// aborts more than Smallbank or Retwis on the same deployment.
#[test]
fn tpcc_is_more_contended_than_smallbank() {
    let run = |which: &str| {
        let config = ClusterConfig::basil_default(6)
            .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()))
            .with_seed(25);
        let which = which.to_string();
        let mut cluster = BasilCluster::build(config, move |client| {
            if which == "tpcc" {
                Box::new(TpccGenerator::new(client.0, 20)) as Box<dyn basil::TxGenerator>
            } else {
                Box::new(SmallbankGenerator::new(client.0, 100_000, 1_000, 0.9))
            }
        });
        cluster.run_measured(Duration::from_millis(200), Duration::from_millis(600))
    };
    let tpcc = run("tpcc");
    let smallbank = run("smallbank");
    assert!(
        tpcc.commit_rate <= smallbank.commit_rate + 0.05,
        "TPC-C ({}) should be at least as contended as Smallbank ({})",
        tpcc.commit_rate,
        smallbank.commit_rate
    );
}
