//! Smoke test for the `quickstart` example path: the same tiny deployment,
//! scripted transactions, and checks the example performs, asserted end to
//! end so the examples cannot silently rot.

use basil::harness::{BasilCluster, ClusterConfig};
use basil::{Duration, Key, Op, ScriptedGenerator, TxProfile, Value};

/// Mirrors `examples/quickstart.rs`: two clients, a transfer and an audit
/// transaction, 100 ms of simulated time.
#[test]
fn quickstart_path_commits_and_audits() {
    let config = ClusterConfig::basil_default(2).with_initial_data(vec![
        (Key::new("alice"), Value::from_u64(100)),
        (Key::new("bob"), Value::from_u64(100)),
    ]);

    let mut cluster = BasilCluster::build(config, |client| {
        let script = if client.0 == 0 {
            vec![TxProfile::new(
                "transfer",
                vec![
                    Op::RmwAdd {
                        key: Key::new("alice"),
                        delta: -30,
                    },
                    Op::RmwAdd {
                        key: Key::new("bob"),
                        delta: 30,
                    },
                ],
            )]
        } else {
            vec![TxProfile::new(
                "audit",
                vec![
                    Op::Read(Key::new("alice")),
                    Op::Read(Key::new("bob")),
                    Op::Write(Key::new("audit:last-run"), Value::from_str_value("done")),
                ],
            )]
        };
        Box::new(ScriptedGenerator::new(script))
    });

    cluster.run_for(Duration::from_millis(100));

    // Both scripted transactions commit.
    assert_eq!(cluster.total_committed(), 2);

    // The transfer moved exactly 30 from alice to bob.
    assert_eq!(
        cluster
            .latest_value(&Key::new("alice"))
            .and_then(|v| v.as_u64()),
        Some(70)
    );
    assert_eq!(
        cluster
            .latest_value(&Key::new("bob"))
            .and_then(|v| v.as_u64()),
        Some(130)
    );

    // The audit transaction's write landed.
    assert!(cluster.latest_value(&Key::new("audit:last-run")).is_some());

    // Per-client stats are populated the way the example prints them.
    let stats = cluster.client_stats();
    assert_eq!(stats.len(), 2);
    for (_, s) in &stats {
        assert_eq!(s.committed, 1);
    }

    // The committed history is serializable.
    cluster
        .audit()
        .expect("quickstart history must be serializable");
}
