//! Serializability-focused integration tests: highly contended workloads and
//! application-level invariants that only hold if the committed history is
//! equivalent to some serial order (Byz-serializability, Theorem 1).

use basil::harness::{BasilCluster, ClusterConfig};
use basil::workloads::smallbank::SmallbankGenerator;
use basil::workloads::ycsb::YcsbGenerator;
use basil::{BasilConfig, Duration, Key, Op, ScriptedGenerator, SystemConfig, TxProfile, Value};

/// Many clients hammering a tiny keyspace: lots of conflicts, many aborts and
/// retries — and still a serializable history.
#[test]
fn extreme_contention_stays_serializable() {
    let config = ClusterConfig::basil_default(8)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()))
        .with_seed(3);
    let mut cluster = BasilCluster::build(config, |client| {
        Box::new(YcsbGenerator::rw_zipf(client.0, 20, 2, 2, 0.9))
    });
    cluster.run_for(Duration::from_millis(400));
    assert!(cluster.total_committed() > 20);
    cluster
        .audit()
        .expect("serializable under extreme contention");
}

/// Counter increments: with `k` committed increments of +1 each, the final
/// value must be exactly `initial + k`. Lost updates or double applications
/// would break this.
#[test]
fn concurrent_counter_increments_are_exact() {
    let per_client = 15u64;
    let clients = 4u64;
    let config = ClusterConfig::basil_default(clients as u32)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()))
        .with_initial_data(vec![(Key::new("counter"), Value::from_u64(1_000))]);
    let mut cluster = BasilCluster::build(config, move |_| {
        let profiles = vec![
            TxProfile::new(
                "incr",
                vec![Op::RmwAdd {
                    key: Key::new("counter"),
                    delta: 1,
                }],
            );
            per_client as usize
        ];
        Box::new(ScriptedGenerator::new(profiles))
    });
    // Contended single-key RMWs need retries; give the run ample time.
    cluster.run_for(Duration::from_secs(3));
    let committed = cluster.total_committed();
    let final_value = cluster
        .latest_value(&Key::new("counter"))
        .and_then(|v| v.as_u64())
        .expect("counter exists");
    assert_eq!(
        final_value,
        1_000 + committed,
        "every committed increment must be applied exactly once \
         (committed = {committed})"
    );
    assert!(
        committed >= clients * per_client / 2,
        "most increments should eventually commit, got {committed}"
    );
    cluster.audit().expect("serializable");
}

/// Smallbank money conservation: send-payment transactions move money between
/// accounts; the total across all accounts must not change.
#[test]
fn smallbank_conserves_money() {
    let accounts = 20u64;
    let initial_balance = 1_000u64;
    let config = ClusterConfig::basil_default(4)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()))
        .with_initial_data(SmallbankGenerator::initial_data(accounts, initial_balance));

    // Only send-payment transactions (pure transfers) so the invariant is
    // exact: every transfer moves `amount` from one checking account to
    // another.
    let mut cluster = BasilCluster::build(config, move |client| {
        let profiles: Vec<TxProfile> = (0..12)
            .map(|i| {
                let from = (client.0 + i) % accounts;
                let to = (client.0 + i + 3) % accounts;
                TxProfile::new(
                    "send_payment",
                    vec![
                        Op::RmwAdd {
                            key: SmallbankGenerator::checking_key(from),
                            delta: -25,
                        },
                        Op::RmwAdd {
                            key: SmallbankGenerator::checking_key(to),
                            delta: 25,
                        },
                    ],
                )
            })
            .collect();
        Box::new(ScriptedGenerator::new(profiles))
    });
    cluster.run_for(Duration::from_secs(2));
    assert!(cluster.total_committed() > 10);

    let total: u64 = (0..accounts)
        .map(|a| {
            cluster
                .latest_value(&SmallbankGenerator::checking_key(a))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(total, accounts * initial_balance, "money must be conserved");
    cluster.audit().expect("serializable");
}

/// Write skew must be prevented under serializability: two transactions each
/// read both flags and clear the other one only if both are currently set.
/// Under serializability at most one of them can commit its clear.
#[test]
fn no_write_skew_on_disjoint_writes() {
    // This test uses plain reads + conditional-free writes, so it checks the
    // stronger property that MVTSO orders the two read-write transactions:
    // whichever commits second must have observed the first one's write (or
    // aborted). We verify via the audit, which would flag the rw-rw cycle.
    let config = ClusterConfig::basil_default(2)
        .with_basil(BasilConfig::bench(SystemConfig::single_shard_f1()))
        .with_initial_data(vec![
            (Key::new("flag_a"), Value::from_u64(1)),
            (Key::new("flag_b"), Value::from_u64(1)),
        ]);
    let mut cluster = BasilCluster::build(config, |client| {
        // Client 0 reads flag_a and clears flag_b; client 1 reads flag_b and
        // clears flag_a. Repeated a few times to give interleavings a chance.
        let (read_key, write_key) = if client.0 == 0 {
            ("flag_a", "flag_b")
        } else {
            ("flag_b", "flag_a")
        };
        let profiles = vec![
            TxProfile::new(
                "skew",
                vec![
                    Op::Read(Key::new(read_key)),
                    Op::Write(Key::new(write_key), Value::from_u64(0)),
                ],
            );
            5
        ];
        Box::new(ScriptedGenerator::new(profiles))
    });
    cluster.run_for(Duration::from_secs(1));
    assert!(cluster.total_committed() > 0);
    cluster
        .audit()
        .expect("interleaved read/write pairs must remain serializable");
}

/// Multi-shard version of the counter test: increments spread across shards
/// still apply exactly once each.
#[test]
fn sharded_counters_are_exact() {
    let config = ClusterConfig::basil_default(3)
        .with_basil(BasilConfig::bench(SystemConfig::sharded(3)))
        .with_initial_data(
            (0..6)
                .map(|i| (Key::new(format!("c{i}")), Value::from_u64(0)))
                .collect(),
        );
    let mut cluster = BasilCluster::build(config, |client| {
        let profiles: Vec<TxProfile> = (0..10)
            .map(|i| {
                let key = format!("c{}", (client.0 + i) % 6);
                TxProfile::new(
                    "incr",
                    vec![Op::RmwAdd {
                        key: Key::new(key),
                        delta: 1,
                    }],
                )
            })
            .collect();
        Box::new(ScriptedGenerator::new(profiles))
    });
    cluster.run_for(Duration::from_secs(2));
    let committed = cluster.total_committed();
    let total: u64 = (0..6)
        .map(|i| {
            cluster
                .latest_value(&Key::new(format!("c{i}")))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(
        total, committed,
        "sum of counters equals committed increments"
    );
    cluster.audit().expect("serializable");
}
